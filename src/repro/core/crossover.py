"""Crossover-point search (paper, Section 5.1).

Sweeps the maximum fetch-gating duty cycle of a hybrid technique (or the
fixed duty of stand-alone fetch gating) and reports the slowdown at each
point; the crossover is where the best technique changes between the ILP
response and DVS.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Optional, Sequence

from repro.core.evaluation import (
    SuiteEvaluation,
    _Baselines,
    evaluate_policy,
    run_baselines,
)
from repro.dtm.fetch_gating import duty_cycle_to_gating_fraction
from repro.dtm.hybrid import PIHybConfig, PIHybPolicy
from repro.errors import DtmConfigError

PAPER_DUTY_CYCLES = (20.0, 10.0, 5.0, 4.0, 3.0, 2.5, 2.0, 1.5)
"""The duty-cycle grid of the paper's Figure 3 sweep."""


@dataclass
class CrossoverResult:
    """Outcome of a duty-cycle sweep."""

    dvs_mode: str
    evaluations: Dict[float, SuiteEvaluation]

    @property
    def mean_slowdowns(self) -> Dict[float, float]:
        """Mean slowdown per duty cycle."""
        return {
            duty: evaluation.mean_slowdown
            for duty, evaluation in self.evaluations.items()
        }

    @property
    def best_duty_cycle(self) -> float:
        """The duty cycle with the lowest mean slowdown."""
        means = self.mean_slowdowns
        return min(means, key=means.get)


def sweep_duty_cycles(
    duty_cycles: Sequence[float] = PAPER_DUTY_CYCLES,
    dvs_mode: str = "stall",
    baselines: Optional[_Baselines] = None,
    instructions: Optional[int] = None,
    processes: Optional[int] = None,
) -> CrossoverResult:
    """Sweep PI-Hyb's maximum duty cycle over the suite (Figure 3a).

    Returns per-duty-cycle suite evaluations; the minimum of the mean
    slowdown identifies the crossover.
    """
    if not duty_cycles:
        raise DtmConfigError("need at least one duty cycle")
    if baselines is None:
        kwargs = {}
        if instructions is not None:
            kwargs["instructions"] = instructions
        baselines = run_baselines(processes=processes, **kwargs)
    evaluations: Dict[float, SuiteEvaluation] = {}
    for duty in duty_cycles:
        fraction = duty_cycle_to_gating_fraction(duty)
        config = PIHybConfig(max_gating_fraction=fraction)
        evaluations[duty] = evaluate_policy(
            partial(PIHybPolicy, config),
            baselines,
            dvs_mode=dvs_mode,
            processes=processes,
        )
    return CrossoverResult(dvs_mode=dvs_mode, evaluations=evaluations)


def find_crossover(
    result: CrossoverResult, rise_threshold: float = 0.005
) -> float:
    """Locate the crossover duty cycle in a sweep.

    The crossover is the smallest duty cycle (deepest gating) whose mean
    slowdown is still within ``rise_threshold`` of the sweep minimum --
    beyond it, gating harder costs more than switching to DVS.
    """
    means = result.mean_slowdowns
    best = min(means.values())
    eligible: List[float] = [
        duty for duty, slow in means.items() if slow <= best + rise_threshold
    ]
    return min(eligible)
