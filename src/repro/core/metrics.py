"""Performance metrics for DTM comparisons.

The paper reports *slowdown factors* (DTM runtime over unmanaged runtime),
*DTM overhead* (slowdown minus one), and improvements as a *reduction in
DTM overhead*: a hybrid running 5.5 % faster than DVS whose overhead is
22 % has reduced the overhead by about 25 %.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import SimulationError
from repro.sim.results import RunResult


def slowdown_factor(run: RunResult, baseline: RunResult) -> float:
    """Wall-clock slowdown of ``run`` relative to ``baseline``.

    Both runs must have committed the same instruction budget on the same
    benchmark; anything else is a harness bug, so it raises.
    """
    if run.benchmark != baseline.benchmark:
        raise SimulationError(
            f"cannot compare {run.benchmark!r} against baseline "
            f"{baseline.benchmark!r}"
        )
    if abs(run.instructions - baseline.instructions) > 0.5:
        raise SimulationError(
            "slowdown requires equal instruction budgets "
            f"({run.instructions} vs {baseline.instructions})"
        )
    return run.elapsed_s / baseline.elapsed_s


def dtm_overhead(slowdown: float) -> float:
    """DTM overhead: the fractional runtime increase (slowdown - 1)."""
    if slowdown < 1.0 - 1e-9:
        raise SimulationError(
            f"slowdown {slowdown} below 1.0: DTM cannot speed a run up"
        )
    return max(0.0, slowdown - 1.0)


def overhead_reduction(reference_slowdown: float, improved_slowdown: float) -> float:
    """Fraction of the reference technique's DTM overhead eliminated.

    The paper's headline: hybrid DTM reduces DVS's overhead by about 25 %.
    """
    reference = dtm_overhead(reference_slowdown)
    improved = dtm_overhead(improved_slowdown)
    if reference <= 0.0:
        raise SimulationError("reference technique has no overhead to reduce")
    return (reference - improved) / reference


def mean_slowdown(slowdowns: Sequence[float]) -> float:
    """Arithmetic mean slowdown across benchmarks (the paper averages its
    per-benchmark slowdowns)."""
    if not slowdowns:
        raise SimulationError("no slowdowns to average")
    return sum(slowdowns) / len(slowdowns)
