"""The batch sweep runner."""

import warnings
from functools import partial

import pytest

from repro.dtm import FetchGatingPolicy
from repro.errors import SimulationError
from repro.sim import EngineConfig, RunSpec, run_many, run_one
from repro.sim.batch import (
    _WARMUP_CACHE,
    reset_stats,
    stats,
    steady_state_for,
)
from repro.workloads import build_benchmark

FAST_N = 1_500_000

RESULT_FIELDS = (
    "benchmark",
    "policy",
    "instructions",
    "elapsed_s",
    "cycles",
    "violations",
    "max_true_temp_c",
    "hottest_block",
    "time_above_trigger_s",
    "dvs_switches",
    "stall_time_s",
    "mean_power_w",
)


def _specs():
    return [
        RunSpec(
            workload=name,
            policy=policy,
            instructions=FAST_N,
            settle_time_s=1.0e-4,
            seed=seed,
        )
        for seed, (name, policy) in enumerate(
            [
                ("gzip", "none"),
                ("gcc", "FG"),
                ("mesa", "DVS"),
                ("gzip", partial(FetchGatingPolicy)),
            ]
        )
    ]


def _as_tuples(results):
    return [
        tuple(getattr(r, field) for field in RESULT_FIELDS) for r in results
    ]


class TestRunMany:
    def test_parallel_matches_serial_exactly(self):
        serial = run_many(_specs(), processes=1)
        parallel = run_many(_specs(), processes=4)
        assert _as_tuples(serial) == _as_tuples(parallel)

    def test_results_preserve_spec_order(self):
        results = run_many(_specs(), processes=4)
        assert [r.benchmark for r in results] == ["gzip", "gcc", "mesa", "gzip"]
        assert [r.policy for r in results] == ["none", "FG", "DVS", "FG"]

    def test_deterministic_across_repeats(self):
        first = run_many(_specs(), processes=2)
        second = run_many(_specs(), processes=3)
        assert _as_tuples(first) == _as_tuples(second)

    def test_empty_batch(self):
        assert run_many([], processes=4) == []

    def test_unpicklable_policy_falls_back_to_serial(self):
        spec = RunSpec(
            workload="gzip",
            policy=lambda: FetchGatingPolicy(),
            instructions=FAST_N,
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            results = run_many([spec], processes=2)
        assert any("picklable" in str(w.message) for w in caught)
        assert results[0].policy == "FG"

    def test_stats_accumulate(self):
        reset_stats()
        results = run_many(_specs()[:2], processes=1)
        snapshot = stats()
        assert snapshot.runs == 2
        expected_steps = sum(
            r.cycles / EngineConfig().thermal_step_cycles for r in results
        )
        assert snapshot.thermal_steps == pytest.approx(expected_steps)
        assert snapshot.wall_s > 0.0
        assert snapshot.steps_per_second > 0.0


class TestRunSpec:
    def test_rejects_bad_budget(self):
        with pytest.raises(SimulationError):
            RunSpec(workload="gzip", instructions=0)

    def test_rejects_negative_settle(self):
        with pytest.raises(SimulationError):
            RunSpec(workload="gzip", settle_time_s=-1.0)

    def test_workload_object_and_name_agree(self):
        workload = build_benchmark("gzip")
        by_name = run_one(
            RunSpec(workload="gzip", policy="none", instructions=FAST_N)
        )
        by_object = run_one(
            RunSpec(workload=workload, policy="none", instructions=FAST_N)
        )
        assert _as_tuples([by_name]) == _as_tuples([by_object])

    def test_dvs_mode_shorthand(self):
        spec = RunSpec(workload="gzip", dvs_mode="ideal")
        assert spec.config.dvs_mode == "ideal"
        explicit = RunSpec(
            workload="gzip",
            dvs_mode="ideal",
            engine_config=EngineConfig(dvs_mode="stall"),
        )
        assert explicit.config.dvs_mode == "stall"


class TestWarmupCache:
    def test_steady_state_cached_per_workload(self):
        _WARMUP_CACHE.clear()
        first = steady_state_for("gzip")
        assert "gzip" in _WARMUP_CACHE
        second = steady_state_for("gzip")
        assert first is not second  # callers get copies
        assert (first == second).all()

    def test_explicit_initial_bypasses_cache(self):
        init = steady_state_for("gzip")
        _WARMUP_CACHE.clear()
        run_one(
            RunSpec(
                workload="gzip",
                policy="none",
                instructions=FAST_N,
                initial=init,
            )
        )
        assert "gzip" not in _WARMUP_CACHE
