"""Workload trace compiler: phase schedules lowered to contiguous arrays.

The interval engine (:mod:`repro.uarch.interval`) interprets a workload
step by step: every thermal step it looks up the current phase, walks a
``{block: activity}`` dict through a memoised scaling model, and builds
an :class:`~repro.uarch.interval.IntervalSample` dataclass.  At ~10 us
of physics per step that interpretation overhead is a measurable slice
of sweep wall time (see docs/MODELING.md section 7).

This module *compiles* the workload side once per run instead:

* :class:`CompiledSchedule` lowers a phase sequence into contiguous
  NumPy arrays -- per-phase base-activity matrix in a fixed block
  order, per-block rate-class indices, per-phase performance scalars
  and cumulative phase-boundary instruction indices;
* :class:`CompiledIntervalModel` is a drop-in replacement for
  :class:`~repro.uarch.interval.IntervalPerformanceModel` whose fast
  path returns a reused :class:`CompiledSample` carrying the activity
  vector directly -- no dict, no dataclass allocation, no per-block
  Python loop;
* the compiled activity math is *bit-identical* to the interpreted
  path: both compute ``min(1.0, base * factor)`` in IEEE double
  precision, so the power vectors (and therefore every downstream
  temperature, violation count and slowdown) match exactly.  The
  ``verify`` mode re-derives every sample through the interpreted
  :class:`~repro.uarch.activity.ActivityModel` and asserts equality,
  making the equivalence continuously checkable
  (``REPRO_COMPILED_TRACE=verify``).

Phase-boundary-crossing intervals (rare: phases span millions of
instructions, intervals span thousands of cycles) delegate to the
interpreted slow path and translate its blended dict, so the compiled
model never re-implements the blending arithmetic it would have to keep
bit-compatible.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError, WorkloadError
from repro.uarch.activity import _RATE_CLASS
from repro.uarch.interval import (
    DtmActuation,
    IntervalPerformanceModel,
    PhasePerformance,
)

_CLASS_INDEX = {"F": 0, "I": 1, "C": 2}

ACTIVITY_CACHE_SIZE = 1024
"""Bound on cached per-(phase, rates) activity vectors, mirroring the
interpreted :class:`~repro.uarch.activity.ActivityModel` cache bound."""


class CompiledSchedule:
    """A workload's phase schedule lowered to contiguous arrays.

    Parameters
    ----------
    phases:
        The workload's phases in execution order (each carrying
        ``base_activities`` and a ``speculation_waste`` via its
        activity model, as :class:`~repro.workloads.phases.Phase` does).
    block_names:
        The block order every activity vector is emitted in -- the
        simulation engine passes its floorplan/network order so the
        vectors feed :meth:`~repro.power.model.PowerModel.
        block_powers_vector` without translation.

    Attributes
    ----------
    base_activities:
        ``(n_phases, n_blocks)`` base activity matrix; blocks a phase
        does not mention are 0, exactly like the engine's dict-to-vector
        translation of the interpreted path.
    rate_class:
        ``(n_blocks,)`` int8 indices into the per-step rate-factor
        triple ``(F, I, C)`` (see :mod:`repro.uarch.activity`).
    phase_instructions:
        ``(n_phases,)`` dynamic instruction counts.
    phase_boundaries:
        ``(n_phases + 1,)`` cumulative instruction indices of the phase
        boundaries within one pass of the schedule (``[0, i0, i0+i1,
        ...]``).
    speculation_waste:
        ``(n_phases,)`` wrong-path work fractions.
    """

    def __init__(
        self, phases: Sequence[PhasePerformance], block_names: Tuple[str, ...]
    ):
        if not phases:
            raise WorkloadError("cannot compile an empty phase schedule")
        if not block_names:
            raise WorkloadError("cannot compile onto an empty block set")
        self.block_names = tuple(block_names)
        self._phases = list(phases)
        n_blocks = len(self.block_names)
        n_phases = len(self._phases)
        position = {name: i for i, name in enumerate(self.block_names)}
        self._position = position

        self.rate_class = np.array(
            [
                _CLASS_INDEX[_RATE_CLASS.get(name, "C")]
                for name in self.block_names
            ],
            dtype=np.int8,
        )
        self.base_activities = np.zeros((n_phases, n_blocks))
        for k, phase in enumerate(self._phases):
            for block, value in phase.activity_model.base_activities.items():
                p = position.get(block)
                if p is not None:
                    self.base_activities[k, p] = value
        self.phase_instructions = np.array(
            [float(phase.instructions) for phase in self._phases]
        )
        self.phase_boundaries = np.concatenate(
            ([0.0], np.cumsum(self.phase_instructions))
        )
        self.speculation_waste = np.array(
            [phase.activity_model.speculation_waste for phase in self._phases]
        )
        # (phase index, fetch rate, commit rate) -> read-only activity
        # vector.  DTM policies hold their command steady for thousands
        # of consecutive steps, so the hit rate is near 1.
        self._act_cache: Dict[tuple, np.ndarray] = {}

    @property
    def n_phases(self) -> int:
        """Number of phases in one pass of the schedule."""
        return len(self._phases)

    @property
    def phases(self) -> list:
        """The source phases (shared, read-only by convention)."""
        return self._phases

    def activities(
        self, phase_index: int, fetch_rate_rel: float, commit_rate_rel: float
    ) -> np.ndarray:
        """The phase's activity vector for the given relative rates.

        Bit-identical to translating
        :meth:`~repro.uarch.activity.ActivityModel.activities` into
        block order: both evaluate ``min(1.0, base * factor)`` per block
        in double precision.  The returned array is cached and shared --
        treat it as read-only (the engine copies before mutating for
        migration, exactly as it did for the interpreted dict cache).
        """
        key = (phase_index, fetch_rate_rel, commit_rate_rel)
        cached = self._act_cache.get(key)
        if cached is not None:
            return cached
        if fetch_rate_rel < 0.0 or commit_rate_rel < 0.0:
            raise WorkloadError("relative rates must be >= 0")
        waste = float(self.speculation_waste[phase_index])
        factor_i = (commit_rate_rel + waste * fetch_rate_rel) / (1.0 + waste)
        factors = np.array([fetch_rate_rel, factor_i, commit_rate_rel])
        acts = self.base_activities[phase_index] * factors[self.rate_class]
        np.minimum(acts, 1.0, out=acts)
        acts.setflags(write=False)
        if len(self._act_cache) >= ACTIVITY_CACHE_SIZE:
            self._act_cache.clear()
        self._act_cache[key] = acts
        return acts

    def vector_from_mapping(self, activities) -> np.ndarray:
        """Translate an interpreted ``{block: activity}`` dict into the
        compiled block order (slow path; phase-boundary intervals)."""
        out = np.zeros(len(self.block_names))
        position = self._position
        for name, value in activities.items():
            p = position.get(name)
            if p is not None:
                out[p] = value
        return out


def compile_workload(workload, block_names) -> CompiledSchedule:
    """Compile ``workload``'s phase schedule for ``block_names`` order.

    The schedule is cached on the workload object per block order, so
    repeated runs of one workload (sweeps resolve the workload once per
    spec) pay the lowering once.
    """
    key = tuple(block_names)
    cache = getattr(workload, "_compiled_schedules", None)
    if cache is None:
        cache = {}
        try:
            workload._compiled_schedules = cache
        except AttributeError:  # pragma: no cover - exotic workload types
            return CompiledSchedule(workload.phases, key)
    schedule = cache.get(key)
    if schedule is None:
        schedule = CompiledSchedule(workload.phases, key)
        cache[key] = schedule
    return schedule


class CompiledSample:
    """Mutable, reused result of one compiled interval advance.

    One instance lives per :class:`CompiledIntervalModel`; every
    :meth:`~CompiledIntervalModel.advance` overwrites it in place, so
    consumers must read what they need before advancing again (the
    engine does: a sample is consumed within its own step).
    """

    __slots__ = (
        "cycles",
        "instructions",
        "acts",
        "fetch_rate_rel",
        "commit_rate_rel",
        "phase_name",
    )

    def __init__(self) -> None:
        self.cycles = 0
        self.instructions = 0.0
        self.acts: Optional[np.ndarray] = None
        self.fetch_rate_rel = 0.0
        self.commit_rate_rel = 0.0
        self.phase_name = ""


class CompiledIntervalModel(IntervalPerformanceModel):
    """Interval performance model advancing over a compiled schedule.

    Drop-in for :class:`~repro.uarch.interval.IntervalPerformanceModel`
    (same phase-walking state, same CPI cache, same
    :meth:`run_length`/:meth:`fast_forward` span maths) whose
    :meth:`advance` returns a :class:`CompiledSample` carrying the
    activity *vector*.  The fast path -- interval strictly inside the
    current phase -- allocates nothing; boundary-crossing intervals
    delegate to the interpreted slow path and translate its blended
    activity dict, keeping the rare-path arithmetic in exactly one
    place.

    With ``verify=True`` every fast-path vector is re-derived through
    the interpreted :class:`~repro.uarch.activity.ActivityModel` and
    compared bit for bit; a mismatch raises
    :class:`~repro.errors.SimulationError`.  This is the compiled
    pipeline's equivalence mode (``REPRO_COMPILED_TRACE=verify``).
    """

    def __init__(
        self,
        schedule: CompiledSchedule,
        loop: bool = True,
        verify: bool = False,
    ):
        super().__init__(schedule.phases, loop=loop)
        self._schedule = schedule
        self._verify = verify
        self._sample = CompiledSample()

    @property
    def schedule(self) -> CompiledSchedule:
        """The compiled schedule this model advances over."""
        return self._schedule

    def _verify_sample(self, phase, vector: np.ndarray, fetch: float,
                       commit: float) -> None:
        reference = self._schedule.vector_from_mapping(
            phase.activity_model.activities(fetch, commit)
        )
        if not np.array_equal(vector, reference):
            bad = int(np.argmax(vector != reference))
            name = self._schedule.block_names[bad]
            raise SimulationError(
                f"compiled activity diverged from the interpreted path at "
                f"phase {phase.name!r}, block {name!r}: "
                f"{vector[bad]!r} != {reference[bad]!r}"
            )

    def advance(self, cycles: int, actuation: DtmActuation) -> CompiledSample:
        """Advance by ``cycles`` cycles under ``actuation``.

        Same contract as the interpreted
        :meth:`~repro.uarch.interval.IntervalPerformanceModel.advance`,
        returning a reused :class:`CompiledSample`.
        """
        if cycles <= 0:
            raise SimulationError("interval length must be > 0")
        sample = self._sample
        remaining = float(cycles) * actuation.clock_enabled_fraction
        if remaining > 1e-9:
            phase = self.current_phase
            cpi = self._cpi(phase, actuation)
            possible = remaining / cpi
            if possible < self._instructions_left:
                # Fast path: identical arithmetic, in the same order, as
                # the interpreted fast path -- `possible`, `fetch_rel`
                # and `commit_rel` are the same doubles, and the cached
                # activity vector applies the same `min(1, base*factor)`.
                self._instructions_left -= possible
                fetch_rel = 1.0 - actuation.gating_fraction
                commit_rel = min((1.0 / cpi) / phase.base_ipc, 1.0)
                acts = self._schedule.activities(
                    self._phase_index, fetch_rel, commit_rel
                )
                if self._verify:
                    self._verify_sample(phase, acts, fetch_rel, commit_rel)
                self._total_instructions += possible
                sample.cycles = cycles
                sample.instructions = possible
                sample.acts = acts
                sample.fetch_rate_rel = fetch_rel
                sample.commit_rate_rel = commit_rel
                sample.phase_name = phase.name
                return sample
        interpreted = super().advance(cycles, actuation)
        sample.cycles = interpreted.cycles
        sample.instructions = interpreted.instructions
        acts = self._schedule.vector_from_mapping(interpreted.activities)
        acts.setflags(write=False)
        sample.acts = acts
        sample.fetch_rate_rel = interpreted.fetch_rate_rel
        sample.commit_rate_rel = interpreted.commit_rate_rel
        sample.phase_name = interpreted.phase_name
        return sample
