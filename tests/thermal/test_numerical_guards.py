"""Numerical-health guards and the expm -> backward-Euler fallback."""

import numpy as np
import pytest

from repro.errors import NumericalError
from repro.floorplan import Block, Floorplan
from repro.thermal import ThermalPackage, TransientSolver, build_thermal_network
from repro.thermal.solver import (
    DIVERGENCE_LIMIT_C,
    ExponentialSolver,
    _healthy,
    step_lockstep,
)

DT = 1.0e-5


@pytest.fixture(scope="module")
def network():
    fp = Floorplan(
        [Block("a", 0, 0, 2e-3, 2e-3), Block("b", 2e-3, 0, 2e-3, 2e-3)]
    )
    return build_thermal_network(fp, ThermalPackage())


def _initial(network):
    return np.full(network.size, network.ambient_c)


def _poison_propagator(solver, dt, scale=1.0e30):
    """Corrupt the cached per-dt propagator pair so the next expm step
    produces a divergent (but finite) result from healthy inputs."""
    a_d, b_d = solver._propagator(dt)
    solver._prop_cache.put(solver._dt_key(dt), (a_d * scale, b_d))


class TestHealthPredicate:
    def test_accepts_normal_temperatures(self):
        assert _healthy(np.array([45.0, 85.0, -40.0]))

    def test_rejects_nan_inf_and_divergence(self):
        assert not _healthy(np.array([45.0, np.nan]))
        assert not _healthy(np.array([45.0, np.inf]))
        assert not _healthy(np.array([45.0, -np.inf]))
        assert not _healthy(np.array([45.0, DIVERGENCE_LIMIT_C + 1.0]))


class TestBackwardEulerGuard:
    def test_nan_power_raises_numerical_error(self, network):
        solver = TransientSolver(network, _initial(network))
        power = np.zeros(network.size)
        power[network.index_of("a")] = np.nan
        with pytest.raises(NumericalError) as excinfo:
            solver.step(power, DT)
        assert excinfo.value.stepper == "be"
        assert excinfo.value.block == "a"

    def test_state_untouched_semantics(self, network):
        # A failed step must not advance the clock.
        solver = TransientSolver(network, _initial(network))
        power = np.full(network.size, np.inf)
        with pytest.raises(NumericalError):
            solver.step(power, DT)
        assert solver.time_s == 0.0


class TestExponentialFallback:
    def test_corrupt_propagator_recovers_via_backward_euler(self, network):
        power = network.power_vector({"a": 5.0, "b": 2.0})
        solver = ExponentialSolver(network, _initial(network))
        reference = TransientSolver(network, _initial(network))

        _poison_propagator(solver, DT)
        stepped = solver.step(power, DT)
        expected = reference.step(power, DT)

        assert solver.fallback_active
        assert _healthy(stepped)
        assert np.allclose(stepped, expected, atol=1e-9)
        assert solver.time_s == pytest.approx(DT)

    def test_fast_forward_recovers_whole_span(self, network):
        steps = 7
        power = network.power_vector({"a": 5.0, "b": 2.0})
        solver = ExponentialSolver(network, _initial(network))
        reference = TransientSolver(network, _initial(network))

        # Poison only the composed span operator: single steps stay
        # exact, the jump goes through the recovery path.
        a_k, b_k = solver._propagator_power(DT, steps)
        solver._power_cache.put(
            (solver._dt_key(DT), steps), (a_k * 1.0e30, b_k)
        )
        jumped = solver.fast_forward(power, DT, steps)
        for _ in range(steps):
            expected = reference.step(power, DT)

        assert solver.fallback_active
        assert np.allclose(jumped, expected, atol=1e-9)
        assert solver.time_s == pytest.approx(steps * DT)

    def test_nan_power_fails_both_steppers(self, network):
        solver = ExponentialSolver(network, _initial(network))
        power = np.zeros(network.size)
        power[network.index_of("b")] = np.nan
        with pytest.raises(NumericalError) as excinfo:
            solver.step(power, DT)
        assert excinfo.value.stepper == "expm->be"
        assert excinfo.value.block == "b"
        assert not solver.fallback_active

    def test_clean_solver_never_sets_fallback(self, network):
        power = network.power_vector({"a": 5.0, "b": 2.0})
        solver = ExponentialSolver(network, _initial(network))
        for _ in range(10):
            solver.step(power, DT)
        assert not solver.fallback_active

    def test_reset_clears_fallback(self, network):
        power = network.power_vector({"a": 5.0, "b": 2.0})
        solver = ExponentialSolver(network, _initial(network))
        _poison_propagator(solver, DT)
        solver.step(power, DT)
        assert solver.fallback_active
        solver.reset(_initial(network))
        assert not solver.fallback_active


class TestLockstepGuards:
    def test_unhealthy_row_falls_back_individually(self, network):
        power = network.power_vector({"a": 5.0, "b": 2.0})
        solvers = [
            ExponentialSolver(network, _initial(network)) for _ in range(3)
        ]
        reference = TransientSolver(network, _initial(network))
        # All three share the network but own their caches; poisoning
        # one solver's propagator corrupts only the batched product for
        # the *whole* stack when that solver is first, so poison a
        # non-leading one and step individually instead: the batch uses
        # solvers[0]'s cache.  Feed one run divergent power instead --
        # its row trips the health check while the others stay exact.
        bad_power = power.copy()
        bad_power[network.index_of("a")] = 2.0e35
        with pytest.raises(NumericalError):
            step_lockstep(solvers, [power, bad_power, power], DT)
        # Rows are adopted in order, so the run before the bad one
        # advanced exactly as a lone solver would; the run after it was
        # left at its pre-step state, not fed a corrupted batch row.
        clean = ExponentialSolver(network, _initial(network))
        expected = clean.step(power, DT)
        assert np.allclose(solvers[0].temperatures, expected)
        assert np.allclose(solvers[2].temperatures, _initial(network))

    def test_backward_euler_lockstep_names_bad_run(self, network):
        power = network.power_vector({"a": 5.0, "b": 2.0})
        solvers = [
            TransientSolver(network, _initial(network)) for _ in range(2)
        ]
        bad_power = np.zeros(network.size)
        bad_power[network.index_of("b")] = np.nan
        with pytest.raises(NumericalError) as excinfo:
            step_lockstep(solvers, [power, bad_power], DT)
        # The dense solve smears the NaN over every node, so the named
        # block is simply the first bad one -- the structured fields
        # still identify the failing stepper and time.
        assert excinfo.value.stepper == "be"
        assert excinfo.value.time_s == 0.0
