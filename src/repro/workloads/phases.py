"""Workload phases.

A :class:`Phase` bundles everything both simulation levels need:

* for the fast interval engine: IPC, memory CPI fraction, the analytic ILP
  response (base IPC versus sustainable fetch supply), speculation waste
  and the per-block base activity vector;
* for the detailed cycle-level core: the statistical trace parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.errors import WorkloadError
from repro.uarch.activity import ActivityModel
from repro.uarch.ilp_response import AnalyticIlpResponse, IlpResponse
from repro.uarch.trace import TraceParameters


@dataclass
class Phase:
    """One program phase.

    Parameters
    ----------
    name:
        Phase identifier, unique within its workload.
    instructions:
        Dynamic instruction count of the phase.
    base_ipc:
        Committed IPC at nominal frequency with no DTM.
    memory_cpi_fraction:
        Fraction of the phase's CPI spent waiting on fixed-wall-clock
        memory; this part shrinks (in cycles) when DVS slows the clock.
    fetch_supply_ipc:
        Sustainable post-front-end instruction supply at zero gating; sets
        where fetch gating stops being free.
    speculation_waste:
        Wrong-path issue work as a fraction of useful work.
    base_activities:
        Per-block switching activity in [0, 1] at nominal operation.
    trace_parameters:
        Statistics for the detailed core's trace generator.
    """

    name: str
    instructions: int
    base_ipc: float
    memory_cpi_fraction: float
    fetch_supply_ipc: float
    speculation_waste: float
    base_activities: Mapping[str, float]
    trace_parameters: Optional[TraceParameters] = None
    _ilp_response: Optional[IlpResponse] = field(default=None, repr=False)
    _activity_model: Optional[ActivityModel] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("phase name must be non-empty")
        if self.instructions <= 0:
            raise WorkloadError(f"phase {self.name!r}: instructions must be > 0")
        if self.base_ipc <= 0.0:
            raise WorkloadError(f"phase {self.name!r}: base IPC must be > 0")
        if not 0.0 <= self.memory_cpi_fraction < 1.0:
            raise WorkloadError(
                f"phase {self.name!r}: memory CPI fraction outside [0, 1)"
            )
        if self.fetch_supply_ipc < self.base_ipc:
            raise WorkloadError(
                f"phase {self.name!r}: fetch supply must be >= base IPC"
            )
        if self.speculation_waste < 0.0:
            raise WorkloadError(f"phase {self.name!r}: waste must be >= 0")
        self.base_activities = dict(self.base_activities)

    @property
    def ilp_response(self) -> IlpResponse:
        """ILP response curve (analytic by default; replace with a
        measured curve via :meth:`with_measured_response`)."""
        if self._ilp_response is None:
            self._ilp_response = AnalyticIlpResponse(
                base_ipc=self.base_ipc, fetch_supply_ipc=self.fetch_supply_ipc
            )
        return self._ilp_response

    @property
    def activity_model(self) -> ActivityModel:
        """Activity scaling model for the interval engine."""
        if self._activity_model is None:
            self._activity_model = ActivityModel(
                self.base_activities, self.speculation_waste
            )
        return self._activity_model

    def with_measured_response(self, response: IlpResponse) -> "Phase":
        """A copy of the phase using a measured ILP response curve (from
        :func:`repro.uarch.ilp_response.characterise_ilp_response`)."""
        return Phase(
            name=self.name,
            instructions=self.instructions,
            base_ipc=self.base_ipc,
            memory_cpi_fraction=self.memory_cpi_fraction,
            fetch_supply_ipc=self.fetch_supply_ipc,
            speculation_waste=self.speculation_waste,
            base_activities=dict(self.base_activities),
            trace_parameters=self.trace_parameters,
            _ilp_response=response,
        )

    def scaled_activities(self, factor: float) -> Dict[str, float]:
        """The base activity vector scaled by ``factor`` and clamped to
        [0, 1] (used when deriving phase variants)."""
        if factor < 0.0:
            raise WorkloadError("activity scale factor must be >= 0")
        return {
            block: min(1.0, value * factor)
            for block, value in self.base_activities.items()
        }
