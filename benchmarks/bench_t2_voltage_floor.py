"""In-text table T2: the lowest safe DVS voltage.

Paper result: 85 % of nominal is the largest low-voltage setting that
eliminates all thermal violations under the low-cost package.
"""

from _helpers import bench_instructions, save_table

from repro.analysis import render_table
from repro.analysis.experiments import t2_voltage_floor


def _run() -> str:
    result = t2_voltage_floor(instructions=bench_instructions())
    rows = [
        [ratio, result.mean_slowdowns[ratio], result.violations[ratio]]
        for ratio in sorted(result.violations)
    ]
    table = render_table(
        ["v_low / v_nominal", "mean slowdown", "violations"],
        rows,
        title="T2: binary-DVS low-voltage sweep",
    )
    return (
        f"{table}\n\nlargest violation-free setting: "
        f"{result.largest_safe_ratio} (paper: 0.85)"
    )


def test_t2_voltage_floor(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_table("t2_voltage_floor", table)
