"""Paired significance testing."""

import pytest

from repro.analysis import paired_comparison
from repro.errors import ReproError


def test_clear_difference_is_significant():
    a = {f"b{i}": 1.10 + 0.001 * i for i in range(9)}
    b = {f"b{i}": 1.16 + 0.001 * i for i in range(9)}
    result = paired_comparison(a, b)
    assert result.mean_difference == pytest.approx(-0.06)
    assert result.significant(0.99)
    assert result.n == 9


def test_identical_samples_not_significant():
    a = {"x": 1.1, "y": 1.2}
    result = paired_comparison(a, dict(a))
    assert result.mean_difference == 0.0
    assert result.p_value == 1.0
    assert not result.significant()


def test_noisy_overlap_not_significant():
    a = {"b0": 1.10, "b1": 1.30, "b2": 1.05, "b3": 1.40}
    b = {"b0": 1.12, "b1": 1.28, "b2": 1.10, "b3": 1.33}
    result = paired_comparison(a, b)
    assert not result.significant(0.99)


def test_sign_convention():
    a = {"x": 1.0, "y": 1.01}
    b = {"x": 1.2, "y": 1.22}
    assert paired_comparison(a, b).mean_difference < 0.0  # A is faster


def test_mismatched_benchmarks_rejected():
    with pytest.raises(ReproError):
        paired_comparison({"x": 1.0}, {"y": 1.0})


def test_single_benchmark_rejected():
    with pytest.raises(ReproError):
        paired_comparison({"x": 1.0}, {"x": 1.1})


def test_confidence_range_validated():
    a = {"x": 1.0, "y": 1.1}
    b = {"x": 1.2, "y": 1.3}
    result = paired_comparison(a, b)
    with pytest.raises(ReproError):
        result.significant(1.5)
