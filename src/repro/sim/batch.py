"""Batch execution of simulation runs.

Sweeps (figure reproductions, duty-cycle crossovers, suite evaluations)
are embarrassingly parallel: every run is one workload under one policy
with its own seed.  This module gives them a common runner:

* :class:`RunSpec` -- a frozen, picklable description of one run;
* :func:`run_many` -- executes a list of specs, serially or across a
  :class:`~concurrent.futures.ProcessPoolExecutor`, preserving spec order
  and producing results identical to the serial path (each run is seeded
  from its spec alone, so scheduling cannot perturb it);
* a per-process steady-state warmup cache, so the expensive no-DTM
  fixed-point solve happens once per workload rather than once per run.

Throughput accounting (:func:`stats` / :func:`reset_stats`) lets
benchmarks report thermal steps per second for whole sweeps.
"""

from __future__ import annotations

import atexit
import os
import pickle
import threading
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import SimulationError
from repro.obs import events as obs_events
from repro.obs import heartbeat as obs_heartbeat
from repro.obs import metrics as obs_metrics
from repro.obs import runctx as obs_runctx
from repro.obs import spill as obs_spill
from repro.obs import trace as obs_trace
from repro.obs.report import SweepReport
from repro.sim.config import EngineConfig
from repro.sim.faults import fire_prerun_faults
from repro.sim.results import RunResult
from repro.sim.supervisor import (
    Outcome,
    RunFailure,
    SweepJournal,
    SweepSupervisor,
    _SpecState,
    load_journal,
    policy_token,
    spec_digest,
)
from repro.workloads.workload import Workload

DEFAULT_INSTRUCTIONS = 20_000_000

SWEEP_LOCKSTEP_ENV = "REPRO_SWEEP_LOCKSTEP"
"""Environment override for :func:`run_many`'s lockstep default:
``1``/``on`` forces lockstep, ``0``/``off`` forces the per-run path.
An explicit ``lockstep=`` argument always wins."""

_LOCKSTEP_ALIASES = {
    "1": True,
    "on": True,
    "true": True,
    "0": False,
    "off": False,
    "false": False,
}


@dataclass(frozen=True, eq=False)
class RunSpec:
    """One simulation run, described by value.

    Everything needed to reproduce the run is in the spec -- workload,
    policy, budget, engine configuration and seed -- so a spec can be
    shipped to a worker process and executed there with a result
    identical to running it in-process.

    Parameters
    ----------
    workload:
        A :class:`~repro.workloads.workload.Workload`, or a SPEC
        benchmark name (resolved with
        :func:`~repro.workloads.spec.build_benchmark`).
    policy:
        A technique name for :func:`~repro.core.policies.make_policy`,
        or a zero-argument factory returning a fresh
        :class:`~repro.dtm.base.DtmPolicy`.  Factories must be picklable
        for multi-process execution -- use :func:`functools.partial`
        around a top-level class or function, not a lambda.
    instructions:
        Measured commit budget.
    settle_time_s:
        Unmeasured lead-in with the policy active.
    dvs_mode:
        Shorthand for ``EngineConfig(dvs_mode=...)``; ignored when
        ``engine_config`` is given.
    engine_config:
        Full engine configuration override.
    seed:
        Sensor-noise seed; each run is seeded from its spec alone.
    initial:
        Node temperature vector to start from.  When omitted, the
        workload's no-DTM steady state is computed (and cached per
        process, keyed by the workload's name under the default
        floorplan/package/technology substrate).
    """

    workload: Union[str, Workload]
    policy: Union[str, Callable] = "none"
    instructions: int = DEFAULT_INSTRUCTIONS
    settle_time_s: float = 0.0
    dvs_mode: str = "stall"
    engine_config: Optional[EngineConfig] = None
    seed: int = 0
    initial: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.instructions <= 0:
            raise SimulationError("instruction budget must be > 0")
        if self.settle_time_s < 0.0:
            raise SimulationError("settle time must be >= 0")

    @property
    def config(self) -> EngineConfig:
        """The effective engine configuration."""
        if self.engine_config is not None:
            return self.engine_config
        return EngineConfig(dvs_mode=self.dvs_mode)

    @property
    def workload_name(self) -> str:
        """The workload's name without building it."""
        if isinstance(self.workload, str):
            return self.workload
        return self.workload.name


@dataclass
class BatchStats:
    """Aggregate throughput over :func:`run_many` calls since the last
    :func:`reset_stats`."""

    runs: int = 0
    thermal_steps: float = 0.0
    wall_s: float = 0.0

    @property
    def steps_per_second(self) -> float:
        """Measured thermal steps per wall-clock second."""
        return self.thermal_steps / self.wall_s if self.wall_s > 0.0 else 0.0


_TOTALS = BatchStats()

# Per-process steady-state cache: workload name -> node temperature
# vector.  Valid for the default substrate only (RunSpec carries no
# floorplan/package/technology overrides); specs with an explicit
# ``initial`` bypass it.
_WARMUP_CACHE: Dict[str, np.ndarray] = {}

# Per-process default substrate (floorplan, thermal model, power model),
# shared across every engine this module builds: all three are read-only
# after construction, and re-assembling the thermal network is the
# dominant per-run fixed cost in short sweeps.
_SUBSTRATE: Optional[tuple] = None


def _default_substrate() -> tuple:
    global _SUBSTRATE
    if _SUBSTRATE is None:
        from repro.floorplan.alpha21364 import build_alpha21364_floorplan
        from repro.power.model import PowerModel
        from repro.thermal.hotspot import HotSpotModel

        floorplan = build_alpha21364_floorplan()
        _SUBSTRATE = (
            floorplan,
            HotSpotModel(floorplan),
            PowerModel(floorplan),
        )
    return _SUBSTRATE

# The worker pool persists across run_many calls: a sweep issues one
# batch per policy configuration, and paying pool start-up per batch
# would dominate short sweeps.
_POOL: Optional[ProcessPoolExecutor] = None
_POOL_SIZE = 0
_POOL_OBS: Tuple[bool, bool, str] = (False, False, "")


def _obs_pool_key() -> Tuple[bool, bool, str]:
    # Workers fork with the parent's observability state frozen at fork
    # time; a pool created with obs off (or spilling into a different
    # directory) would silently drop every worker's run records, and a
    # pool created with heartbeats off would never publish progress
    # slots.  The directory matters whenever either channel writes into
    # it (spill files with obs on, hb-*.slot files with heartbeats on).
    heartbeats = obs_heartbeat.enabled()
    if not obs_metrics.enabled():
        if not heartbeats:
            return (False, False, "")
        return (False, True, str(obs_metrics.obs_dir()))
    return (True, heartbeats, str(obs_metrics.obs_dir()))


def _get_pool(processes: int) -> ProcessPoolExecutor:
    global _POOL, _POOL_SIZE, _POOL_OBS
    obs_key = _obs_pool_key()
    if _POOL is not None and (
        _POOL_SIZE != processes
        or _POOL_OBS != obs_key
        or getattr(_POOL, "_broken", False)
    ):
        # Never hand out a pool observed broken: a dead worker poisons
        # every future submitted to it.  Rebuild instead.  A pool whose
        # workers forked under a different observability state is
        # rebuilt for the same reason: it would lose telemetry.
        _shutdown_pool()
    if _POOL is None:
        _POOL = ProcessPoolExecutor(max_workers=processes)
        _POOL_SIZE = processes
        _POOL_OBS = obs_key
    return _POOL


# Fork-context workers inherit this module's exit hooks; they must
# never run the parent's pool teardown (shutting down the forked
# executor copy deadlocks on locks that were held at fork time and
# wedges the child, which in turn hangs the parent's exit join).
_OWNER_PID = os.getpid()


def _shutdown_pool() -> None:
    """Tear the pool down without ever waiting on a wedged worker.

    The worker list is captured *before* ``shutdown()``: the executor's
    management thread empties ``_processes`` as soon as shutdown begins,
    so capturing afterwards would terminate nothing.  ``shutdown(
    wait=False, cancel_futures=True)`` stops new work, and any worker
    still alive afterwards (stuck in a run that will never finish, or
    mid-crash) is terminated outright -- a hung child must not be able
    to hang a rebuild or interpreter exit.
    """
    global _POOL
    pool, _POOL = _POOL, None
    if pool is None or os.getpid() != _OWNER_PID:
        return
    workers = list((getattr(pool, "_processes", None) or {}).values())
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - defensive
        pass
    for worker in workers:
        try:
            worker.terminate()
        except Exception:  # pragma: no cover - defensive
            pass


def _register_shutdown_hooks() -> None:
    # concurrent.futures joins its management threads from a
    # threading-shutdown callback, which runs *before* regular atexit
    # handlers -- so a plain atexit hook fires too late to stop a wedged
    # worker from hanging interpreter exit.  Threading-shutdown
    # callbacks run LIFO and concurrent.futures registered its join at
    # import time, so registering here (after that import) runs our
    # teardown first.  The atexit fallback keeps older interpreters
    # covered; _shutdown_pool is idempotent, so both may fire.
    try:
        threading._register_atexit(_shutdown_pool)
    except Exception:  # pragma: no cover - interpreter-dependent
        pass
    atexit.register(_shutdown_pool)


_register_shutdown_hooks()


# The sweep context of the run_many call currently driving the pool
# (None -> classic per-spec pickle dispatch).  run_many is not
# reentrant across threads, matching the rest of this module's globals.
_ACTIVE_CONTEXT = None


def _pool_submit(pool, index: int, spec):
    """Submit one spec to the pool via the active shared-memory context
    when there is one, else the classic pickle path."""
    if _ACTIVE_CONTEXT is not None:
        return _ACTIVE_CONTEXT.submit(pool, index, spec)
    return pool.submit(run_one, spec)


def _pool_resolve(raw):
    """Translate a worker reply (shm result stub or full result)."""
    if _ACTIVE_CONTEXT is not None:
        return _ACTIVE_CONTEXT.resolve(raw)
    return raw


def reset_stats() -> None:
    """Zero the batch throughput counters."""
    global _TOTALS
    _TOTALS = BatchStats()


def stats() -> BatchStats:
    """A snapshot of the batch throughput counters."""
    return replace(_TOTALS)


def _resolve_workload(spec: RunSpec) -> Workload:
    if isinstance(spec.workload, str):
        from repro.workloads.spec import build_benchmark

        return build_benchmark(spec.workload)
    return spec.workload


def _build_policy(spec: RunSpec):
    if isinstance(spec.policy, str):
        from repro.core.policies import make_policy

        return make_policy(spec.policy)
    return spec.policy()


def steady_state_for(workload: Union[str, Workload]) -> np.ndarray:
    """No-DTM steady-state node temperatures under the default substrate,
    cached per process (a copy is returned)."""
    name = workload if isinstance(workload, str) else workload.name
    cached = _WARMUP_CACHE.get(name)
    if cached is None:
        from repro.sim.engine import SimulationEngine

        if isinstance(workload, str):
            from repro.workloads.spec import build_benchmark

            workload = build_benchmark(workload)
        floorplan, hotspot, power_model = _default_substrate()
        engine = SimulationEngine(
            workload,
            floorplan=floorplan,
            hotspot=hotspot,
            power_model=power_model,
        )
        cached = engine.compute_initial_temperatures()
        _WARMUP_CACHE[name] = cached
    return cached.copy()


def _begin_heartbeat(spec):
    """Register a progress publisher for ``spec`` (``None`` when off).

    Keyed by the supervisor's spec digest so service jobs and heartbeat
    records agree on identity; the total is the spec's own progress
    denominator (instruction budget for single-core runs, simulated
    duration for dual-core ones)."""
    if not obs_heartbeat.enabled():
        return None
    try:
        digest = spec_digest(replace(spec, initial=None))
    except TypeError:  # spec without an ``initial`` field
        digest = spec_digest(spec)
    policy = getattr(spec, "policy", "?")
    if not isinstance(policy, str):
        policy = policy_token(policy)
    total = getattr(spec, "instructions", None)
    if total is None:
        total = getattr(spec, "duration_s", 0.0)
    return obs_heartbeat.begin(
        digest, str(spec.workload_name), str(policy), float(total)
    )


def run_one(spec) -> RunResult:
    """Execute one spec in this process.

    Specs other than the single-core :class:`RunSpec` (e.g.
    :class:`~repro.multicore.batch.DualCoreRunSpec`) provide their own
    ``run_in_process`` and are dispatched to it, so every sweep path --
    serial, pooled, lockstep-delegated, retried -- funnels through this
    one entry point.  The heartbeat bracket wraps the whole dispatch:
    the engine (any of the three implementations) picks the publisher
    up from the ambient stack when its step loop starts.
    """
    heartbeat = _begin_heartbeat(spec)
    if heartbeat is None:
        return _run_one_impl(spec)
    try:
        result = _run_one_impl(spec)
    except BaseException as exc:
        obs_heartbeat.finish(heartbeat, error=f"{type(exc).__name__}: {exc}")
        raise
    obs_heartbeat.finish(heartbeat)
    return result


def sweep_progress() -> Dict[str, Dict[str, object]]:
    """Live per-run progress of in-flight (and recent) runs.

    A merged :func:`repro.obs.heartbeat.snapshot`: records published by
    this process plus every pool worker's slot file, keyed by spec
    digest, each carrying a computed ``percent``.  Empty unless
    heartbeats are enabled (``REPRO_HEARTBEAT=1`` or the service)."""
    return obs_heartbeat.snapshot()


def _run_one_impl(spec) -> RunResult:
    runner = getattr(spec, "run_in_process", None)
    if runner is not None:
        return runner()
    from repro.sim.engine import SimulationEngine

    fire_prerun_faults(spec.config.fault_plan, spec.seed)
    workload = _resolve_workload(spec)
    initial = spec.initial
    if initial is None:
        initial = steady_state_for(workload)
    floorplan, hotspot, power_model = _default_substrate()
    policy = _build_policy(spec)
    engine = SimulationEngine(
        workload,
        policy=policy,
        floorplan=floorplan,
        hotspot=hotspot,
        power_model=power_model,
        config=spec.config,
        seed=spec.seed,
    )
    initial_vec = np.array(initial, dtype=float, copy=True)
    if not obs_metrics.enabled():
        return engine.run(
            spec.instructions,
            initial=initial_vec,
            settle_time_s=spec.settle_time_s,
        )
    # Digest of the spec as the sweep parent saw it (warmup vectors are
    # filled in before dispatch, so strip ours to match the identity the
    # supervisor journals under).
    digest = spec_digest(replace(spec, initial=None))
    run_id = f"{workload.name}.{policy.name}.s{spec.seed}.{digest[:8]}"
    obs_runctx.begin(
        run_id,
        benchmark=workload.name,
        policy=policy.name,
        seed=spec.seed,
        digest=digest,
    )
    error: Optional[str] = None
    try:
        with obs_trace.span("run.total"):
            return engine.run(
                spec.instructions,
                initial=initial_vec,
                settle_time_s=spec.settle_time_s,
            )
    except BaseException as exc:
        error = f"{type(exc).__name__}: {exc}"
        raise
    finally:
        # The record reaches the sweep parent even from a pool worker:
        # spill.record appends to this process's spill file there, or to
        # the parent's in-memory list on the serial path.
        obs_spill.record(obs_runctx.end(error=error))


def _precompute_warmups(specs: Sequence[RunSpec]) -> List[RunSpec]:
    """Fill in ``initial`` for every spec that lacks one.

    The steady-state solve is the per-run fixed cost; computing each
    distinct workload's warmup once in the parent keeps worker processes
    from repeating it and keeps results independent of how specs are
    distributed over the pool.
    """
    filled: List[RunSpec] = []
    for spec in specs:
        if spec.initial is None:
            filled.append(replace(spec, initial=steady_state_for(spec.workload)))
        else:
            filled.append(spec)
    return filled


def _chunk_evenly(specs: Sequence[RunSpec], parts: int) -> List[List[RunSpec]]:
    """Split ``specs`` into at most ``parts`` contiguous, near-equal,
    non-empty chunks (order preserved, so flattening chunk results
    restores spec order)."""
    parts = min(parts, len(specs))
    base, extra = divmod(len(specs), parts)
    chunks: List[List[RunSpec]] = []
    start = 0
    for i in range(parts):
        stop = start + base + (1 if i < extra else 0)
        chunks.append(list(specs[start:stop]))
        start = stop
    return chunks


def _resolve_lockstep(specs: Sequence, lockstep: Optional[bool]) -> bool:
    """Decide whether a sweep runs in lockstep.

    Explicit argument wins; then the ``REPRO_SWEEP_LOCKSTEP``
    environment override; otherwise lockstep is on automatically for
    multi-run sweeps of plain :class:`RunSpec` instances with none of
    the features that want per-run supervision (fault plans,
    ``raise_on_violation``, trace recording).  Heterogeneous batches
    (dual-core specs, mixed spec types) stay on the per-run path.
    """
    if lockstep is not None:
        return bool(lockstep)
    raw = os.environ.get(SWEEP_LOCKSTEP_ENV)
    if raw is not None:
        value = _LOCKSTEP_ALIASES.get(raw.strip().lower())
        if value is None:
            raise SimulationError(
                f"{SWEEP_LOCKSTEP_ENV} must be one of on/off (or 1/0), "
                f"got {raw!r}"
            )
        return value
    if len(specs) < 2:
        return False
    for spec in specs:
        if not isinstance(spec, RunSpec):
            return False
        config = spec.config
        if (
            config.raise_on_violation
            or config.record_trace
            or config.fault_plan is not None
        ):
            return False
    return True


def run_many(
    specs: Sequence[RunSpec],
    processes: Optional[int] = None,
    lockstep: Optional[bool] = None,
    *,
    timeout_s: Optional[float] = None,
    retries: int = 0,
    backoff_s: float = 0.1,
    backoff_max_s: float = 30.0,
    partial_results: bool = False,
    journal: Optional[str] = None,
    resume: Optional[str] = None,
) -> List[Outcome]:
    """Execute ``specs`` and return their results in spec order.

    Parameters
    ----------
    specs:
        The runs to execute.
    processes:
        ``None`` or ``1`` -- run serially in this process.  ``N > 1`` --
        fan out over a process pool of ``N`` workers.  Results are
        identical either way: warmups are precomputed in the parent and
        every run is seeded from its spec, so the schedule cannot leak
        into the physics.  Specs that fail to pickle (e.g. a lambda
        policy factory) trigger a warning and a serial fallback.
    lockstep:
        Advance the batch's runs together, servicing their thermal
        steps with one batched BLAS-3 operation per step group (see
        :mod:`repro.sim.lockstep`).  Composes with ``processes``: each
        worker receives one contiguous chunk of specs and runs it in
        lockstep.  Results match the non-lockstep path to BLAS
        summation order.  ``None`` (default) resolves via the
        ``REPRO_SWEEP_LOCKSTEP`` environment variable when set, else
        turns lockstep on automatically for sweeps of two or more
        plain :class:`RunSpec` runs without fault plans,
        ``raise_on_violation`` or trace recording; heterogeneous
        batches fall back to per-run execution.  Pass ``False`` to
        force the per-run path.
    timeout_s:
        Per-run wall-clock budget, enforced on the pool path (an
        overdue run's worker may be wedged, so the pool is rebuilt and
        unfinished specs are resubmitted).  Serial runs cannot be
        preempted and ignore it.
    retries:
        Attempts allowed *beyond* the first for each failing run, with
        exponential backoff (``backoff_s`` doubling up to
        ``backoff_max_s``, plus deterministic jitter seeded from the
        spec digest).  Because every run is seeded from its spec, a
        retried run that succeeds is bit-identical to an undisturbed
        one.  Injected transient faults (:mod:`repro.sim.faults`) are
        stripped before a retry.
    partial_results:
        Instead of raising on the first failed spec, keep going and
        return a structured :class:`~repro.sim.supervisor.RunFailure`
        in that spec's position.
    journal:
        Path of a JSONL sweep journal; every completed run is appended
        (spec digest -> result) as it finishes, so an interrupted sweep
        can be resumed.
    resume:
        Path of a journal from an interrupted sweep: specs whose digest
        already has a recorded result are *not* re-executed, and new
        completions are appended to the same file (unless ``journal``
        names a different one).

    Returns
    -------
    list
        One outcome per spec, in spec order: :class:`RunResult`, or
        :class:`~repro.sim.supervisor.RunFailure` for specs given up on
        when ``partial_results`` is set.
    """
    specs = list(specs)
    if not specs:
        return []
    lockstep = _resolve_lockstep(specs, lockstep)
    started = time.perf_counter()
    obs_on = obs_metrics.enabled()
    # The last report always describes the *latest* sweep: a sweep run
    # with observability off must not leave a predecessor's report
    # behind masquerading as its own.
    global _LAST_REPORT
    _LAST_REPORT = None
    spill_token = obs_spill.begin_collection() if obs_on else None
    if obs_on:
        obs_events.emit(
            "sweep.start",
            n_specs=len(specs),
            processes=processes if processes else 1,
            lockstep=bool(lockstep),
        )

    journal_path = journal if journal is not None else resume
    completed = load_journal(resume) if resume is not None else {}

    # Digest before warmup precomputation: serial and pooled sweeps must
    # agree on each spec's identity.
    outcomes: List[Optional[Outcome]] = [None] * len(specs)
    items: List = []
    for index, spec in enumerate(specs):
        digest = spec_digest(spec)
        if digest in completed:
            outcomes[index] = completed[digest]
        else:
            items.append((index, _SpecState(spec=spec, digest=digest)))

    supervisor = SweepSupervisor(
        timeout_s=timeout_s,
        retries=retries,
        backoff_s=backoff_s,
        backoff_max_s=backoff_max_s,
        partial_results=partial_results,
        journal=SweepJournal(journal_path) if journal_path else None,
    )
    try:
        if items:
            parallel = processes is not None and processes > 1
            if parallel:
                for _, state in items:
                    if state.spec.initial is not None:
                        continue
                    if isinstance(state.spec, RunSpec):
                        state.spec = replace(
                            state.spec,
                            initial=steady_state_for(state.spec.workload),
                        )
                    else:
                        warmed = getattr(
                            state.spec, "precompute_warmup", None
                        )
                        if warmed is not None:
                            state.spec = warmed()
                unpicklable = _first_unpicklable(
                    [state.spec for _, state in items]
                )
                if unpicklable is not None:
                    warnings.warn(
                        f"spec #{unpicklable} is not picklable (lambda "
                        f"policy factory? use functools.partial); running "
                        f"the batch serially",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    parallel = False
            if parallel and lockstep:
                supervisor.run_lockstep_pool(items, outcomes, processes)
            elif parallel:
                # Zero-copy dispatch: the sweep's immutable context goes
                # into one shared-memory segment, workers attach once and
                # receive integer indices, numeric results come back in a
                # preallocated shared table.  create_context returns None
                # (pickle fallback) when disabled or unavailable.
                from repro.sim.shm import create_context

                slots: List[Optional[RunSpec]] = [None] * len(specs)
                for index, state in items:
                    # Only single-core specs ride the shared segment;
                    # anything else keeps its slot empty so the context
                    # submits it on the classic pickle path.
                    if isinstance(state.spec, RunSpec):
                        slots[index] = state.spec
                global _ACTIVE_CONTEXT
                context = _ACTIVE_CONTEXT = create_context(slots)
                try:
                    supervisor.run_pool(items, outcomes, processes)
                finally:
                    _ACTIVE_CONTEXT = None
                    if context is not None:
                        context.close()
            elif lockstep:
                supervisor.run_lockstep_serial(items, outcomes)
            else:
                supervisor.run_serial(items, outcomes)
    finally:
        if supervisor.journal is not None:
            supervisor.journal.close()

    missing = [i for i, outcome in enumerate(outcomes) if outcome is None]
    if missing:  # pragma: no cover - supervisor invariant violation
        raise SimulationError(
            f"sweep supervision lost specs {missing}: every spec must "
            f"end as a result, a failure record, or a raised error"
        )

    wall = time.perf_counter() - started
    _TOTALS.runs += len(outcomes)
    _TOTALS.wall_s += wall
    for spec, outcome in zip(specs, outcomes):
        if isinstance(outcome, RunResult):
            _TOTALS.thermal_steps += (
                outcome.cycles / spec.config.thermal_step_cycles
            )

    if obs_on:
        # Merge the per-run records every executing process spilled
        # (workers via their spill files, this process in memory) with
        # the supervisor's sweep-level telemetry.  Report counters come
        # only from those two sources -- never from merging worker
        # registries -- so serial and pooled sweeps count identically.
        failures = [
            outcome.to_json_dict()
            for outcome in outcomes
            if isinstance(outcome, RunFailure)
        ]
        meta: Dict[str, object] = {
            "processes": processes if processes else 1,
            "lockstep": bool(lockstep),
            "n_specs": len(specs),
            "wall_seconds": wall,
        }
        if supervisor.degradation_reason:
            meta["degradation_reason"] = supervisor.degradation_reason
        _LAST_REPORT = SweepReport.build(
            obs_spill.collect(spill_token),
            failures=failures,
            meta=meta,
            sweep_counters=supervisor.telemetry,
        )
        # The merged records now live in the report; drop the spill
        # files so they cannot accumulate across sweeps.
        obs_spill.discard_merged()
        obs_events.emit(
            "sweep.complete",
            n_specs=len(specs),
            n_failures=len(failures),
            wall_seconds=wall,
        )
    return outcomes


_LAST_REPORT: Optional[SweepReport] = None


def last_sweep_report() -> Optional[SweepReport]:
    """The :class:`~repro.obs.report.SweepReport` of the most recent
    :func:`run_many` call executed with observability enabled, or
    ``None``."""
    return _LAST_REPORT


def _first_unpicklable(specs: Sequence[RunSpec]) -> Optional[int]:
    """Index of the first spec :mod:`pickle` rejects, else ``None``.

    Only the exceptions pickle raises for genuinely unpicklable values
    are treated as "use the serial path": a spec whose ``__reduce__``
    (or a buggy policy factory attribute) raises something else is a
    real defect and propagates, rather than being silently reclassified
    as a serial-fallback condition.
    """
    for i, spec in enumerate(specs):
        try:
            pickle.dumps(spec)
        except (pickle.PicklingError, TypeError, AttributeError, ValueError):
            return i
    return None
