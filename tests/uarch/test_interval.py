"""Interval performance engine."""

import pytest

from repro.errors import SimulationError, WorkloadError
from repro.uarch import DtmActuation, IntervalPerformanceModel
from repro.workloads import Phase, make_activity_profile


def make_phase(name="p", instructions=1_000_000, ipc=2.0, mem=0.2,
               supply=3.2, waste=0.2):
    return Phase(
        name=name,
        instructions=instructions,
        base_ipc=ipc,
        memory_cpi_fraction=mem,
        fetch_supply_ipc=supply,
        speculation_waste=waste,
        base_activities=make_activity_profile(0.8, 0.1, 0.5, 0.7, 0.2),
    )


NOMINAL = DtmActuation()


class TestNominalExecution:
    def test_ipc_matches_phase(self):
        model = IntervalPerformanceModel([make_phase(ipc=2.0)])
        sample = model.advance(10_000, NOMINAL)
        assert sample.instructions == pytest.approx(20_000)
        assert sample.commit_rate_rel == pytest.approx(1.0)
        assert sample.fetch_rate_rel == pytest.approx(1.0)

    def test_activities_match_base_profile(self):
        phase = make_phase()
        model = IntervalPerformanceModel([phase])
        sample = model.advance(10_000, NOMINAL)
        assert sample.activities == pytest.approx(phase.base_activities)

    def test_total_instruction_accounting(self):
        model = IntervalPerformanceModel([make_phase()])
        for _ in range(5):
            model.advance(10_000, NOMINAL)
        assert model.total_instructions == pytest.approx(5 * 20_000)


class TestFetchGating:
    def test_mild_gating_keeps_ipc(self):
        model = IntervalPerformanceModel([make_phase()])
        sample = model.advance(10_000, DtmActuation(gating_fraction=0.1))
        assert sample.instructions > 0.97 * 20_000

    def test_deep_gating_cuts_ipc(self):
        model = IntervalPerformanceModel([make_phase()])
        sample = model.advance(10_000, DtmActuation(gating_fraction=2 / 3))
        assert sample.instructions < 0.75 * 20_000

    def test_gating_reduces_frontend_activity(self):
        phase = make_phase()
        model = IntervalPerformanceModel([phase])
        sample = model.advance(10_000, DtmActuation(gating_fraction=0.5))
        assert sample.activities["Icache"] == pytest.approx(
            phase.base_activities["Icache"] * 0.5
        )


class TestFrequencyScaling:
    def test_memory_bound_phase_gains_cycle_ipc_at_low_clock(self):
        memory_bound = make_phase(ipc=1.0, mem=0.5, supply=2.8)
        model = IntervalPerformanceModel([memory_bound])
        slow = model.advance(
            10_000, DtmActuation(relative_frequency=0.873)
        )
        # Fewer memory stall *cycles* at the lower clock.
        assert slow.instructions > 10_000 * 1.0

    def test_compute_bound_phase_unchanged_per_cycle(self):
        compute_bound = make_phase(ipc=2.0, mem=0.0)
        model = IntervalPerformanceModel([compute_bound])
        slow = model.advance(
            10_000, DtmActuation(relative_frequency=0.873)
        )
        assert slow.instructions == pytest.approx(20_000, rel=1e-6)

    def test_wall_clock_slowdown_less_than_frequency_for_memory_bound(self):
        # instructions per second = f * IPC(f): for mem=0.5 the slowdown
        # is roughly half the frequency reduction.
        memory_bound = make_phase(ipc=1.0, mem=0.5, supply=2.8)
        model = IntervalPerformanceModel([memory_bound])
        nominal_rate = model.advance(10_000, NOMINAL).instructions  # per 10k cycles
        slow_sample = model.advance(10_000, DtmActuation(relative_frequency=0.873))
        ips_nominal = nominal_rate * 1.0
        ips_slow = slow_sample.instructions * 0.873
        slowdown = ips_nominal / ips_slow
        assert 1.0 < slowdown < 1.0 / 0.873


class TestClockGating:
    def test_half_duty_halves_progress(self):
        model = IntervalPerformanceModel([make_phase()])
        sample = model.advance(
            10_000, DtmActuation(clock_enabled_fraction=0.5)
        )
        assert sample.instructions == pytest.approx(10_000)

    def test_fully_gated_interval_commits_nothing(self):
        model = IntervalPerformanceModel([make_phase()])
        sample = model.advance(
            10_000, DtmActuation(clock_enabled_fraction=0.0)
        )
        assert sample.instructions == 0.0
        assert all(v == 0.0 for v in sample.activities.values())


class TestPhaseSequencing:
    def test_crossing_a_phase_boundary_blends_activities(self):
        quiet = make_phase("quiet", instructions=10_000, ipc=2.0)
        hot = Phase(
            name="hot",
            instructions=1_000_000,
            base_ipc=2.0,
            memory_cpi_fraction=0.2,
            fetch_supply_ipc=3.2,
            speculation_waste=0.2,
            base_activities=make_activity_profile(1.0, 0.2, 0.6, 0.9, 0.3),
        )
        model = IntervalPerformanceModel([quiet, hot])
        sample = model.advance(10_000, NOMINAL)  # 20k instructions
        low = quiet.base_activities["IntReg"]
        high = hot.base_activities["IntReg"]
        assert low < sample.activities["IntReg"] < high

    def test_loops_back_to_first_phase(self):
        phase = make_phase(instructions=15_000)
        model = IntervalPerformanceModel([phase], loop=True)
        model.advance(10_000, NOMINAL)  # consumes 20k > 15k
        assert model.current_phase.name == "p"

    def test_no_loop_raises_when_exhausted(self):
        phase = make_phase(instructions=15_000)
        model = IntervalPerformanceModel([phase], loop=False)
        with pytest.raises(SimulationError):
            model.advance(10_000, NOMINAL)

    def test_phase_name_reported(self):
        model = IntervalPerformanceModel([make_phase("alpha")])
        assert model.advance(100, NOMINAL).phase_name == "alpha"


class TestValidation:
    def test_rejects_empty_phase_list(self):
        with pytest.raises(WorkloadError):
            IntervalPerformanceModel([])

    def test_rejects_non_positive_interval(self):
        model = IntervalPerformanceModel([make_phase()])
        with pytest.raises(SimulationError):
            model.advance(0, NOMINAL)

    def test_actuation_validation(self):
        with pytest.raises(SimulationError):
            DtmActuation(gating_fraction=1.0)
        with pytest.raises(SimulationError):
            DtmActuation(relative_frequency=1.5)
        with pytest.raises(SimulationError):
            DtmActuation(clock_enabled_fraction=1.5)
