"""Thermal thresholds (paper, Section 3).

* ``emergency_c`` (85 C): the junction temperature the chip must never
  exceed (2001 ITRS recommendation).
* ``practical_limit_c`` (82 C): emergency minus the worst-case sensor
  error (1 degree of noise plus up to 2 degrees of fixed offset).
* ``trigger_c`` (81.8 C): the *observed* temperature at which DTM engages,
  slightly below the practical limit to give the response time to act.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DtmConfigError


@dataclass(frozen=True)
class ThermalThresholds:
    """Trigger / practical-limit / emergency temperatures in Celsius."""

    emergency_c: float = 85.0
    practical_limit_c: float = 82.0
    trigger_c: float = 81.8

    def __post_init__(self) -> None:
        if not self.trigger_c <= self.practical_limit_c <= self.emergency_c:
            raise DtmConfigError(
                "thresholds must satisfy trigger <= practical limit <= emergency"
            )

    @property
    def sensor_margin_c(self) -> float:
        """Design margin reserved for sensor error."""
        return self.emergency_c - self.practical_limit_c

    def above_trigger(self, observed_c: float) -> bool:
        """True when an observed temperature demands a DTM response."""
        return observed_c > self.trigger_c

    def in_violation(self, true_c: float) -> bool:
        """True when a *true* temperature violates the emergency
        threshold."""
        return true_c > self.emergency_c
