"""A workload: a named, looping sequence of phases."""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import WorkloadError
from repro.workloads.phases import Phase


class Workload:
    """A benchmark as the simulation engine sees it.

    The phase sequence repeats, mirroring the periodic behaviour SimPoint
    picks representative samples from.
    """

    def __init__(self, name: str, phases: Sequence[Phase], description: str = ""):
        if not name:
            raise WorkloadError("workload name must be non-empty")
        if not phases:
            raise WorkloadError(f"workload {name!r} has no phases")
        names = [phase.name for phase in phases]
        if len(set(names)) != len(names):
            raise WorkloadError(f"workload {name!r} has duplicate phase names")
        self.name = name
        self.description = description
        self._phases: List[Phase] = list(phases)

    @property
    def phases(self) -> List[Phase]:
        """The phases in execution order."""
        return list(self._phases)

    @property
    def total_instructions(self) -> int:
        """Instructions in one pass through the phase sequence."""
        return sum(phase.instructions for phase in self._phases)

    @property
    def mean_ipc(self) -> float:
        """Instruction-weighted average nominal IPC."""
        total = self.total_instructions
        return total / sum(
            phase.instructions / phase.base_ipc for phase in self._phases
        )

    def __repr__(self) -> str:
        return (
            f"Workload({self.name!r}, {len(self._phases)} phases, "
            f"{self.total_instructions / 1e6:.1f}M instructions)"
        )
