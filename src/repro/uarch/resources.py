"""Machine parameters for the 21264-class core.

Widths and structure sizes follow the Alpha 21264 configuration the paper's
SimpleScalar setup models: 4-wide fetch, 6-wide issue (4 integer + 2
floating point), 80-entry reorder buffer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError


@dataclass(frozen=True)
class MachineParameters:
    """Structural parameters of the out-of-order core.

    All widths are per cycle; all sizes are entries.
    """

    fetch_width: int = 4
    rename_width: int = 4
    int_issue_width: int = 4
    fp_issue_width: int = 2
    commit_width: int = 8
    rob_size: int = 80
    int_queue_size: int = 20
    fp_queue_size: int = 15
    load_store_queue_size: int = 64
    fetch_buffer_size: int = 16
    branch_mispredict_penalty: int = 10
    """Front-end refill cycles after a mispredicted branch resolves."""

    def __post_init__(self) -> None:
        fields = {
            "fetch_width": self.fetch_width,
            "rename_width": self.rename_width,
            "int_issue_width": self.int_issue_width,
            "fp_issue_width": self.fp_issue_width,
            "commit_width": self.commit_width,
            "rob_size": self.rob_size,
            "int_queue_size": self.int_queue_size,
            "fp_queue_size": self.fp_queue_size,
            "load_store_queue_size": self.load_store_queue_size,
            "fetch_buffer_size": self.fetch_buffer_size,
            "branch_mispredict_penalty": self.branch_mispredict_penalty,
        }
        for name, value in fields.items():
            if value < 1:
                raise SimulationError(f"machine parameter {name} must be >= 1")

    @property
    def issue_width(self) -> int:
        """Total issue width across integer and floating-point clusters."""
        return self.int_issue_width + self.fp_issue_width


def default_machine() -> MachineParameters:
    """The paper's 21264-class configuration."""
    return MachineParameters()
