"""Thin blocking client for the sweep service.

Plain sockets, stdlib only -- usable from scripts, tests and the
``python -m repro submit`` CLI verb without dragging asyncio into the
caller.  One client is one connection; it is not thread-safe (use one
client per thread, the server schedules fairly across connections).
"""

from __future__ import annotations

import socket
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import SimulationError
from repro.service import protocol
from repro.sim.supervisor import result_from_journal_entry


class ServiceError(SimulationError):
    """The server answered with an error (malformed spec, unknown op)."""


class ServiceBusyError(ServiceError):
    """The server shed the submission (admission queue full) or is
    draining.  Back off and retry -- nothing was admitted."""


@dataclass
class SubmitOutcome:
    """Per-spec resolution of one submission, in submission order."""

    index: int
    digest: str
    cached: bool
    result: object = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True when the spec resolved to a result."""
        return self.error is None


Address = Union[str, Tuple[str, int]]


def _connect(address: Address, timeout: Optional[float]) -> socket.socket:
    if isinstance(address, tuple):
        sock = socket.create_connection(address, timeout=timeout)
    else:
        path = address[5:] if address.startswith("unix:") else address
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(path)
    return sock


class ServiceClient:
    """Blocking connection to a running sweep service.

    ``address`` is a ``(host, port)`` tuple for TCP or a Unix-socket
    path (optionally prefixed ``unix:``).  ``timeout`` bounds each
    socket operation; :meth:`submit` takes its own overall deadline.
    """

    def __init__(self, address: Address, timeout: Optional[float] = 30.0):
        self._sock = _connect(address, timeout)
        self._max_frame = protocol.MAX_FRAME_BYTES
        # Called with each broadcast ``progress`` frame that arrives
        # while this client waits on a reply or on submit results
        # (requires :meth:`watch`); never called re-entrantly.
        self.on_progress: Optional[Callable[[Dict[str, object]], None]] = None

    def close(self) -> None:
        """Close the connection (idempotent)."""
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # --- plumbing -----------------------------------------------------------

    def _request(self, obj: Dict[str, object]) -> Dict[str, object]:
        protocol.send_frame(self._sock, obj)
        while True:
            reply = protocol.recv_frame(self._sock, self._max_frame)
            if reply is None:
                raise ServiceError("server closed the connection")
            # Broadcast progress frames (from a prior ``watch``) may
            # interleave with any reply; they are never the answer.
            if reply.get("op") == "progress":
                self._notify_progress(reply)
                continue
            return reply

    def _notify_progress(self, frame: Dict[str, object]) -> None:
        if self.on_progress is not None:
            self.on_progress(frame)

    # --- verbs --------------------------------------------------------------

    def ping(self) -> Dict[str, object]:
        """Liveness probe; returns the server's ping reply."""
        reply = self._request({"op": "ping"})
        if not reply.get("ok"):
            raise ServiceError(str(reply.get("error")))
        return reply

    def status(self, digest: Optional[str] = None) -> Dict[str, object]:
        """The server's STATUS snapshot (queue depth, cache counters,
        drain state -- see docs/SERVICE.md).

        With ``digest``, returns that one job's status instead --
        state, live percent-complete and heartbeat progress for a
        running job -- raising :class:`ServiceError` if the server does
        not know the digest."""
        request: Dict[str, object] = {"op": "status"}
        if digest is not None:
            request["digest"] = digest
        reply = self._request(request)
        if not reply.get("ok"):
            raise ServiceError(str(reply.get("error")))
        return reply["job"] if digest is not None else reply["status"]

    def jobs(self) -> List[Dict[str, object]]:
        """Every queued/running job plus the recently finished tail."""
        reply = self._request({"op": "jobs"})
        if not reply.get("ok"):
            raise ServiceError(str(reply.get("error")))
        return reply["jobs"]

    def watch(self, on: bool = True) -> bool:
        """Subscribe to streamed ``progress`` frames.

        While subscribed, the server pushes a frame every
        ``progress_interval_s`` whenever work is in flight; they are
        delivered to :attr:`on_progress` as they arrive interleaved
        with other replies.  Returns the subscription state."""
        reply = self._request({"op": "watch", "on": bool(on)})
        if not reply.get("ok"):
            raise ServiceError(str(reply.get("error")))
        return bool(reply.get("watching"))

    def drain(self) -> Dict[str, object]:
        """Ask the server to drain gracefully (administrative)."""
        reply = self._request({"op": "drain"})
        if not reply.get("ok"):
            raise ServiceError(str(reply.get("error")))
        return reply

    def submit(
        self,
        specs: Sequence[object],
        timeout_s: Optional[float] = None,
    ) -> List[SubmitOutcome]:
        """Submit specs and block until every one resolves.

        ``specs`` may be :class:`~repro.sim.batch.RunSpec` instances or
        wire mappings (``{"benchmark": ..., "policy": ..., ...}``).
        Returns one :class:`SubmitOutcome` per spec, in order; cached
        results are marked ``cached=True``.  Raises
        :class:`ServiceBusyError` when the server sheds the batch, and
        :class:`ServiceError` when it rejects it (nothing admitted in
        either case).
        """
        wire = [
            spec if isinstance(spec, dict) else protocol.spec_to_wire(spec)
            for spec in specs
        ]
        protocol.send_frame(self._sock, {"op": "submit", "specs": wire})
        accept = protocol.recv_frame(self._sock, self._max_frame)
        if accept is None:
            raise ServiceError("server closed the connection")
        if not accept.get("ok"):
            if accept.get("busy") or accept.get("draining"):
                raise ServiceBusyError(str(accept.get("error")))
            raise ServiceError(str(accept.get("error")))
        expected = int(accept["accepted"])
        outcomes: Dict[int, SubmitOutcome] = {}
        deadline = (
            time.monotonic() + timeout_s if timeout_s is not None else None
        )
        while len(outcomes) < expected:
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    f"submission timed out with "
                    f"{expected - len(outcomes)} results outstanding"
                )
            frame = protocol.recv_frame(self._sock, self._max_frame)
            if frame is None:
                raise ServiceError(
                    "server closed the connection mid-submission"
                )
            if frame.get("op") == "progress":
                self._notify_progress(frame)
                continue
            if frame.get("op") != "result":
                continue  # interleaved reply to another verb
            index = int(frame["index"])
            if frame.get("ok"):
                result = result_from_journal_entry(frame)
                outcomes[index] = SubmitOutcome(
                    index=index,
                    digest=str(frame["digest"]),
                    cached=bool(frame.get("cached")),
                    result=result,
                )
            else:
                outcomes[index] = SubmitOutcome(
                    index=index,
                    digest=str(frame.get("digest", "")),
                    cached=False,
                    error=str(frame.get("error")),
                )
        return [outcomes[i] for i in sorted(outcomes)]
