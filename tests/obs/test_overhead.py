"""The disabled path must stay allocation-free.

The engine's hot loop and the library's cold paths all call into the
obs layer unconditionally; the contract that makes this acceptable is
that a disabled ``inc`` / ``emit`` / ``span`` call allocates nothing
and returns immediately.  These tests pin that contract with
``sys.getallocatedblocks``.
"""

import gc
import sys

from repro.obs import events, flightrec, heartbeat, metrics, trace

N = 10_000
# Interpreter noise allowance: unrelated caches may allocate a handful
# of blocks; N no-op calls allocating anything real would show up as
# thousands.
SLACK = 50


def _allocated_blocks(fn) -> int:
    fn()  # warm any lazy setup outside the measured window
    gc.collect()
    before = sys.getallocatedblocks()
    fn()
    return sys.getallocatedblocks() - before


def test_disabled_inc_allocates_nothing(obs_dir):
    def burst():
        for _ in range(N):
            metrics.inc("hot.counter")

    assert _allocated_blocks(burst) < SLACK


def test_disabled_span_allocates_nothing(obs_dir):
    def burst():
        for _ in range(N):
            with trace.span("hot.section"):
                pass

    assert _allocated_blocks(burst) < SLACK
    assert trace.totals() == {}


def test_disabled_emit_allocates_nothing(obs_dir):
    def burst():
        for _ in range(N):
            events.emit("hot.event")

    assert _allocated_blocks(burst) < SLACK
    assert not list(obs_dir.glob("events-*.jsonl"))


def test_disabled_heartbeat_begin_allocates_nothing(obs_dir):
    previous = heartbeat.set_enabled(False)
    try:

        def burst():
            for _ in range(N):
                heartbeat.begin("k", "gzip", "Hyb", 100.0)

        assert _allocated_blocks(burst) < SLACK
        assert heartbeat.snapshot() == {}
    finally:
        heartbeat.set_enabled(previous)


def test_disabled_heartbeat_active_allocates_nothing(obs_dir):
    # ``active`` is the engine's once-per-run capture; with nothing
    # registered it must be a free read returning None.
    def burst():
        for _ in range(N):
            heartbeat.active()

    assert heartbeat.active() is None
    assert _allocated_blocks(burst) < SLACK


def test_disabled_flightrec_note_allocates_nothing(obs_dir):
    previous = flightrec.set_enabled(False)
    try:
        flightrec.reset()

        def burst():
            for _ in range(N):
                flightrec.note("hot.flight")

        assert _allocated_blocks(burst) < SLACK
        assert flightrec.snapshot() == []
    finally:
        flightrec.set_enabled(previous)
        flightrec.reset()
