"""Chip floorplans: block geometry, adjacency, and the Alpha 21364-like
floorplan used throughout the paper (Figure 2).

A floorplan is a set of non-overlapping rectangular blocks that tile the
die.  It is the single geometric input both the thermal RC model and the
power model are derived from, mirroring HotSpot's planning-stage workflow
where "only microarchitectural parameters and estimates of block areas are
needed".
"""

from repro.floorplan.block import Block
from repro.floorplan.floorplan import Adjacency, Floorplan
from repro.floorplan.alpha21364 import (
    ALL_BLOCKS,
    CORE_BLOCKS,
    FRONTEND_BLOCKS,
    HOTTEST_BLOCK,
    L2_BLOCKS,
    build_alpha21364_floorplan,
)
from repro.floorplan.hotspot_io import dump_flp, load_flp, parse_flp, save_flp
from repro.floorplan.migration import SPARE_REGISTER_FILE, build_migration_floorplan
from repro.floorplan.validate import validate_floorplan

__all__ = [
    "Block",
    "Floorplan",
    "Adjacency",
    "build_alpha21364_floorplan",
    "validate_floorplan",
    "build_migration_floorplan",
    "SPARE_REGISTER_FILE",
    "parse_flp",
    "dump_flp",
    "load_flp",
    "save_flp",
    "ALL_BLOCKS",
    "CORE_BLOCKS",
    "L2_BLOCKS",
    "FRONTEND_BLOCKS",
    "HOTTEST_BLOCK",
]
