"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's figures or in-text tables at
full scale, prints the table, and writes it to ``benchmarks/results/``.

Environment knobs:

* ``REPRO_BENCH_INSTRUCTIONS`` -- per-benchmark instruction budget
  (default 20 000 000, about 7 ms of 3 GHz execution per run).
* ``REPRO_BENCH_PROCESSES`` -- worker processes for the sweep runner
  (:func:`repro.sim.batch.run_many`); default 1 (serial).  Values > 1
  fan independent runs out over a process pool; results are identical
  to the serial path.
* ``REPRO_BENCH_LOCKSTEP`` -- set to 1 to advance each batch's runs in
  lockstep, servicing their thermal steps with one batched BLAS-3
  operation per step group (:mod:`repro.sim.lockstep`); composes with
  ``REPRO_BENCH_PROCESSES``.  Default 0.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional

RESULTS_DIR = Path(__file__).parent / "results"


def bench_instructions() -> int:
    """Per-run instruction budget for the harness."""
    return int(os.environ.get("REPRO_BENCH_INSTRUCTIONS", 20_000_000))


def bench_processes() -> Optional[int]:
    """Worker-process count for the sweep runner (None means serial)."""
    value = int(os.environ.get("REPRO_BENCH_PROCESSES", 1))
    return value if value > 1 else None


def bench_lockstep() -> bool:
    """Whether sweeps should use the lockstep batched runner."""
    return os.environ.get("REPRO_BENCH_LOCKSTEP", "0") not in ("0", "", "false")


def throughput_report() -> str:
    """One-line thermal-step throughput summary of the runs executed via
    :mod:`repro.sim.batch` since the last :func:`reset_throughput`."""
    from repro.sim.batch import stats

    snapshot = stats()
    processes = bench_processes() or 1
    mode = ", lockstep" if bench_lockstep() else ""
    return (
        f"[throughput: {snapshot.runs} runs, "
        f"{snapshot.thermal_steps:,.0f} thermal steps in "
        f"{snapshot.wall_s:.1f} s = {snapshot.steps_per_second:,.0f} "
        f"steps/s, processes={processes}{mode}]"
    )


def reset_throughput() -> None:
    """Zero the batch throughput counters before a timed section."""
    from repro.sim.batch import reset_stats

    reset_stats()


def save_table(name: str, text: str) -> None:
    """Print a rendered table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print()
    print(text)
    print(f"[saved to {path}]")
