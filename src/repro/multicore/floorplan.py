"""The dual-core floorplan and its power budget.

The 16 mm x 16 mm die keeps the big L2 as its bottom band; the top band
carries two complete copies of the Figure 2 core separated by thin L2
columns::

    +--------------------------------------------------+
    | L2c | core 0 (6.2 x 6.2) | L2m | core 1 | L2c     |   6.2 mm
    +--------------------------------------------------+
    |                L2 (16 x 9.8)                      |   9.8 mm
    +--------------------------------------------------+

Core block names carry a ``#<core>`` suffix (``IntReg#0``, ``IntReg#1``);
the helpers here translate between base names and instances.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import FloorplanError
from repro.floorplan.alpha21364 import _BLOCK_GEOMETRY_MM, CORE_BLOCKS
from repro.floorplan.block import Block
from repro.floorplan.floorplan import Floorplan
from repro.power.budget import default_power_specs
from repro.power.dynamic import BlockPowerSpec
from repro.units import MM

CORE_INSTANCES = (0, 1)
"""Core indices on the dual-core die."""

_CORE_ORIGIN_X_MM = {0: 1.2, 1: 8.6}
_BAND_Y_MM = 9.8
_SINGLE_CORE_ORIGIN_MM = (4.9, 9.8)  # the core's origin in the base floorplan

_L2_BANKS_MM = (
    ("L2", 0.0, 0.0, 16.0, 9.8),
    ("L2_left", 0.0, 9.8, 1.2, 6.2),
    ("L2_mid", 7.4, 9.8, 1.2, 6.2),
    ("L2_right", 14.8, 9.8, 1.2, 6.2),
)


def core_block(base_name: str, core: int) -> str:
    """Instance name of ``base_name`` on core ``core``."""
    if core not in CORE_INSTANCES:
        raise FloorplanError(f"no core {core} on the dual-core die")
    if base_name not in CORE_BLOCKS:
        raise FloorplanError(f"{base_name!r} is not a per-core block")
    return f"{base_name}#{core}"


def core_of(block_name: str) -> int:
    """Core index of an instance name; raises for shared blocks."""
    if "#" not in block_name:
        raise FloorplanError(f"{block_name!r} is not a per-core block instance")
    base, _, suffix = block_name.partition("#")
    if base not in CORE_BLOCKS or not suffix.isdigit():
        raise FloorplanError(f"{block_name!r} is not a per-core block instance")
    core = int(suffix)
    if core not in CORE_INSTANCES:
        raise FloorplanError(f"no core {core} on the dual-core die")
    return core


def build_dual_core_floorplan() -> Floorplan:
    """Two Figure 2 cores plus L2 banks, tiling a 16 mm square die."""
    blocks: List[Block] = [
        Block(name=name, x=x * MM, y=y * MM, width=w * MM, height=h * MM)
        for name, x, y, w, h in _L2_BANKS_MM
    ]
    base_x, base_y = _SINGLE_CORE_ORIGIN_MM
    core_geometry = [
        (name, x, y, w, h)
        for name, x, y, w, h in _BLOCK_GEOMETRY_MM
        if name in CORE_BLOCKS
    ]
    for core in CORE_INSTANCES:
        dx = _CORE_ORIGIN_X_MM[core] - base_x
        dy = _BAND_Y_MM - base_y
        for name, x, y, w, h in core_geometry:
            blocks.append(
                Block(
                    name=core_block(name, core),
                    x=(x + dx) * MM,
                    y=(y + dy) * MM,
                    width=w * MM,
                    height=h * MM,
                )
            )
    return Floorplan(blocks, name="alpha-dual-core")


def dual_core_power_specs() -> Dict[str, BlockPowerSpec]:
    """Per-block specs for the dual-core die.

    Core blocks inherit the single-core budget; the L2 banks keep the
    single-core L2's power *density* scaled to each bank's area.
    """
    base = default_power_specs()
    floorplan = build_dual_core_floorplan()
    specs: Dict[str, BlockPowerSpec] = {}

    # The base design's L2 density (bottom band, W/m^2).
    base_l2_density = base["L2"].peak_dynamic_w / (16.0 * MM * 9.8 * MM)
    for name, *_ in _L2_BANKS_MM:
        area = floorplan[name].area
        peak = base_l2_density * area
        specs[name] = BlockPowerSpec(
            name=name,
            peak_dynamic_w=peak,
            leakage_ref_w=0.15 * peak,
            clock_fraction=base["L2"].clock_fraction,
        )
    for core in CORE_INSTANCES:
        for base_name in CORE_BLOCKS:
            spec = base[base_name]
            name = core_block(base_name, core)
            specs[name] = BlockPowerSpec(
                name=name,
                peak_dynamic_w=spec.peak_dynamic_w,
                leakage_ref_w=spec.leakage_ref_w,
                clock_fraction=spec.clock_fraction,
            )
    return specs
