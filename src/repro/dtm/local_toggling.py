"""Local toggling: per-domain clock stop (related work the paper drops).

"Local toggling, in which the processor domain(s) in thermal stress are
slowed or stopped" (citing Skadron et al., ISCA 2003).  The paper states:
"We have found that local toggling confers little advantage over fetch
gating and do not consider it further."  This implementation lets the
library *measure* that finding (see ``benchmarks/bench_a6_local_toggling``)
instead of taking it on faith.

The policy stops the clock of whichever domain holds the hottest sensor,
at a duty set by an integral controller.  The catch the paper alludes to:
the hotspot domain (the integer core) is on the commit critical path, so
stopping it stalls everything -- the power cut is local but the slowdown
is global, which is exactly why fetch gating (which lets the window drain
and exploits ILP) wins at mild stress.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.dtm.base import DtmCommand, DtmPolicy
from repro.dtm.controllers import IntegralController
from repro.dtm.domains import CLOCK_DOMAINS, domain_of
from repro.dtm.thresholds import ThermalThresholds
from repro.errors import DtmConfigError


@dataclass(frozen=True)
class LocalTogglingConfig:
    """Configuration of the local-toggling policy.

    Parameters
    ----------
    ki:
        Integral gain in duty units per Kelvin-second (shared by the
        per-domain controllers).
    max_duty:
        Largest fraction of time a domain's clock may be stopped.
    nominal_voltage:
        Supply voltage (local toggling never touches it).
    """

    ki: float = 600.0
    max_duty: float = 0.9
    nominal_voltage: float = 1.3

    def __post_init__(self) -> None:
        if self.ki <= 0.0:
            raise DtmConfigError("ki must be > 0")
        if not 0.0 < self.max_duty < 1.0:
            raise DtmConfigError("max duty must be in (0, 1)")
        if self.nominal_voltage <= 0.0:
            raise DtmConfigError("voltage must be > 0")


class LocalTogglingPolicy(DtmPolicy):
    """Integral-controlled per-domain clock stop.

    One controller per gateable clock domain; each sample drives the
    controller of the domain containing the hottest reading with that
    reading, and relaxes the others toward zero with the coolest reading
    in their own domain.
    """

    name = "LT"

    def __init__(
        self,
        config: Optional[LocalTogglingConfig] = None,
        thresholds: Optional[ThermalThresholds] = None,
    ):
        self._config = config if config is not None else LocalTogglingConfig()
        self._thresholds = (
            thresholds if thresholds is not None else ThermalThresholds()
        )
        self._controllers: Dict[str, IntegralController] = {
            domain: IntegralController(
                ki=self._config.ki,
                setpoint=self._thresholds.trigger_c,
                output_min=0.0,
                output_max=self._config.max_duty,
            )
            for domain in CLOCK_DOMAINS
        }
        self._duties: Dict[str, float] = {domain: 0.0 for domain in CLOCK_DOMAINS}

    @property
    def config(self) -> LocalTogglingConfig:
        """The policy configuration."""
        return self._config

    @property
    def duties(self) -> Dict[str, float]:
        """Current per-domain stop duties (copy)."""
        return dict(self._duties)

    def update(
        self, readings: Mapping[str, float], time_s: float, dt_s: float
    ) -> DtmCommand:
        """Drive each domain's controller with its own hottest sensor."""
        per_domain: Dict[str, float] = {}
        for block, temp in readings.items():
            try:
                domain = domain_of(block)
            except DtmConfigError:
                continue  # L2 banks have no gateable clock
            if domain not in per_domain or temp > per_domain[domain]:
                per_domain[domain] = temp
        for domain, controller in self._controllers.items():
            measurement = per_domain.get(domain, self._thresholds.trigger_c - 5.0)
            self._duties[domain] = controller.update(measurement, dt_s)
        active = {
            domain: duty for domain, duty in self._duties.items() if duty > 1e-9
        }
        return DtmCommand(
            gating_fraction=0.0,
            voltage=self._config.nominal_voltage,
            domain_gating=active,
        )

    def reset(self) -> None:
        """Release every domain and clear the controllers."""
        for controller in self._controllers.values():
            controller.reset()
        self._duties = {domain: 0.0 for domain in CLOCK_DOMAINS}
