"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_benchmark_and_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--benchmark", "gzip"])

    def test_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--benchmark", "specjbb", "--policy", "Hyb"]
            )

    def test_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--benchmark", "gzip", "--policy", "dvs"]
            )

    def test_defaults(self):
        args = build_parser().parse_args(
            ["run", "--benchmark", "gzip", "--policy", "Hyb"]
        )
        assert args.instructions == 20_000_000
        assert args.dvs_mode == "stall"


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gzip" in out and "PI-Hyb" in out

    def test_run_protected_benchmark_exits_zero(self, capsys):
        code = main([
            "run", "--benchmark", "mesa", "--policy", "Hyb",
            "--instructions", "2000000",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "slowdown_factor" in out

    def test_run_unmanaged_hot_benchmark_exits_nonzero(self, capsys):
        code = main([
            "run", "--benchmark", "crafty", "--policy", "none",
            "--instructions", "2000000",
        ])
        capsys.readouterr()
        assert code == 1  # violations occurred

    def test_sweep(self, capsys):
        code = main([
            "sweep", "--duty-cycles", "20", "3",
            "--instructions", "1000000",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "best duty cycle" in out

    def test_characterise(self, capsys):
        code = main(["characterise", "--instructions", "1000000"])
        out = capsys.readouterr().out
        assert code == 0
        assert "IntReg" in out

    def test_evaluate_subset(self, capsys):
        code = main([
            "evaluate", "--techniques", "DVS",
            "--instructions", "1000000",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "DVS" in out
