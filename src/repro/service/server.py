"""The sweep service: a crash-tolerant asyncio job server.

``python -m repro serve`` wraps the existing hard parts of the batch
layer -- spec digests, the JSONL journal with resume, the
fault-tolerant supervisor -- in a long-running server that many
clients can hammer concurrently:

* **dedup by content**: every spec is identified by
  :func:`~repro.sim.supervisor.spec_digest`; an identical spec is
  answered from the content-addressed :class:`ResultCache` without
  recomputation, across clients and across server restarts;
* **bounded admission**: the queue holds at most ``max_queue`` jobs;
  a submission that would overflow it is refused with an explicit
  ``busy`` reply (load shedding) rather than accepted into unbounded
  memory;
* **fair scheduling**: queued jobs are drained round-robin across
  clients, so one client dumping a thousand specs cannot starve
  another's single run;
* **supervised execution**: each job runs through
  :func:`~repro.sim.batch.run_many`, so retries, timeouts, pool
  rebuild and serial degradation all compose unchanged, and every
  completed run is journalled before it is announced;
* **graceful drain**: SIGTERM stops admission, lets the in-flight run
  finish, flushes the journal, then exits 0; queued-but-unstarted jobs
  are refused back to their waiters;
* **crash recovery**: SIGKILL loses nothing that was journalled -- on
  restart the journal backfills the cache and only unfinished specs
  re-execute when resubmitted.

The failure matrix (who can misbehave, what happens) is documented in
docs/SERVICE.md and pinned by ``tests/service/``.
"""

from __future__ import annotations

import asyncio
import os
import socket
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.service import protocol
from repro.service.cache import ResultCache
from repro.sim.supervisor import RunFailure, spec_digest

DEFAULT_MAX_QUEUE = 256
"""Default bound on the admission queue, across all clients."""


@dataclass
class ServiceConfig:
    """Everything one server instance needs, by value.

    Exactly one of ``socket_path`` (Unix domain socket) or
    ``host``/``port`` (TCP; port 0 binds an ephemeral port) selects the
    listener.  The supervisor knobs (``retries``/``backoff_s``/
    ``backoff_max_s``/``timeout_s``/``processes``) are passed through
    to :func:`~repro.sim.batch.run_many` for every job.  ``runner`` is
    a test seam: a callable ``spec -> outcome`` replacing the default
    supervised execution.
    """

    cache_dir: str
    socket_path: Optional[str] = None
    host: str = "127.0.0.1"
    port: int = 0
    max_queue: int = DEFAULT_MAX_QUEUE
    max_frame_bytes: int = protocol.MAX_FRAME_BYTES
    processes: Optional[int] = None
    retries: int = 0
    backoff_s: float = 0.1
    backoff_max_s: float = 30.0
    timeout_s: Optional[float] = None
    runner: Optional[Callable] = None

    def __post_init__(self) -> None:
        if self.max_queue <= 0:
            raise SimulationError("max_queue must be > 0")
        if self.max_frame_bytes <= 0:
            raise SimulationError("max_frame_bytes must be > 0")


@dataclass
class _Job:
    """One admitted spec awaiting (or undergoing) execution."""

    digest: str
    spec: object
    owner: int  # client id whose round-robin queue holds it
    waiters: List[Tuple["_Connection", int]] = field(default_factory=list)
    state: str = "queued"  # queued -> running -> done


class _Connection:
    """One client connection with a serialised outbound frame stream."""

    def __init__(self, cid: int, writer: asyncio.StreamWriter):
        self.id = cid
        self.writer = writer
        self.open = True
        self._send_lock = asyncio.Lock()

    async def send(self, obj: Dict[str, object]) -> None:
        """Send one frame; a dead peer marks the connection closed
        instead of raising into the caller (job completion must never
        die because one waiter vanished)."""
        if not self.open:
            return
        try:
            async with self._send_lock:
                await protocol.write_frame(self.writer, obj)
        except (ConnectionError, OSError, RuntimeError):
            self.open = False


class SweepService:
    """The server.  One instance, one listener, one executor lane.

    Jobs execute strictly one at a time (the engine itself may fan out
    over a process pool per ``processes``); admission, scheduling and
    result fan-out all live on the event loop, so a misbehaving client
    can be failed individually without touching anyone else.
    """

    def __init__(self, config: ServiceConfig):
        self.config = config
        root = Path(config.cache_dir)
        self.cache = ResultCache(root / "results")
        self.journal_path = root / "journal.jsonl"
        self.ready = threading.Event()
        self.address: Optional[str] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Dict[int, _Connection] = {}
        self._handler_tasks: set = set()
        self._next_client_id = 0
        # Scheduling state: per-client FIFO queues drained round-robin.
        self._queues: "OrderedDict[int, Deque[_Job]]" = OrderedDict()
        self._rr: Deque[int] = deque()
        self._jobs: Dict[str, _Job] = {}
        self._queued_total = 0
        self._running: Optional[_Job] = None
        self._wake = asyncio.Event()
        self._draining = False
        self._drain_began: Optional[float] = None
        self.drain_seconds: Optional[float] = None
        self._started = time.monotonic()
        # Robustness counters, maintained unconditionally so STATUS
        # works with observability off; mirrored into repro.obs when on.
        self.jobs_done = 0
        self.jobs_failed = 0
        self.shed = 0
        self.cancelled = 0
        self.dedup_joins = 0
        self.protocol_errors = 0

    # --- counters -----------------------------------------------------------

    def _count(self, name: str) -> None:
        obs_metrics.inc(f"service.{name}")

    def _gauge_queue(self) -> None:
        if obs_metrics.enabled():
            obs_metrics.REGISTRY.gauge(
                "service.queue_depth",
                help="jobs admitted but not yet running",
            ).set(float(self._queued_total))

    # --- lifecycle ----------------------------------------------------------

    async def run(self) -> int:
        """Serve until drained; returns the process exit code (0)."""
        self._loop = asyncio.get_running_loop()
        Path(self.config.cache_dir).mkdir(parents=True, exist_ok=True)
        recovered = self.cache.absorb_journal(self.journal_path)
        if self.config.socket_path:
            self._server = await self._listen_unix(self.config.socket_path)
            self.address = f"unix:{self.config.socket_path}"
        else:
            self._server = await asyncio.start_server(
                self._handle_client, host=self.config.host,
                port=self.config.port,
            )
            bound = self._server.sockets[0].getsockname()
            self.address = f"{bound[0]}:{bound[1]}"
        obs_events.emit(
            "service.start",
            address=self.address,
            cache_entries=len(self.cache),
            recovered_from_journal=recovered,
            max_queue=self.config.max_queue,
        )
        self.ready.set()
        try:
            await self._executor_loop()
        finally:
            self._server.close()
            await self._server.wait_closed()
            for conn in list(self._connections.values()):
                conn.open = False
                try:
                    conn.writer.close()
                except Exception:  # pragma: no cover - defensive
                    pass
            # Closed transports feed EOF to their readers; wait for the
            # handler tasks to notice and unwind instead of letting the
            # loop teardown cancel them mid-read.
            if self._handler_tasks:
                await asyncio.wait(self._handler_tasks, timeout=5.0)
            if self._drain_began is not None:
                self.drain_seconds = time.monotonic() - self._drain_began
                if obs_metrics.enabled():
                    obs_metrics.REGISTRY.gauge(
                        "service.drain_seconds",
                        help="duration of the last graceful drain",
                    ).set(self.drain_seconds)
                obs_events.emit(
                    "service.drain_complete",
                    drain_seconds=self.drain_seconds,
                    jobs_done=self.jobs_done,
                )
        return 0

    async def _listen_unix(self, path: str) -> asyncio.AbstractServer:
        """Bind the Unix socket, reclaiming a stale file if needed.

        A SIGKILLed predecessor cannot unlink its socket file, and
        restart-into-the-same-rendezvous is a core part of the crash
        recovery story.  If nothing answers on the path, the file is a
        corpse: remove it and bind.  If something *does* answer, refuse
        loudly -- two live servers sharing a cache directory would race
        the journal.  The probe must happen *before* binding, because
        ``asyncio.start_unix_server`` silently removes an existing
        socket file, live server or not.
        """
        if os.path.exists(path):
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            probe.settimeout(1.0)
            try:
                probe.connect(path)
            except OSError:
                os.unlink(path)  # stale socket (or junk file): reclaim
            else:
                raise SimulationError(
                    f"socket {path} already has a live server"
                )
            finally:
                probe.close()
        return await asyncio.start_unix_server(
            self._handle_client, path=path
        )

    def begin_drain(self) -> None:
        """Stop admitting work and exit once the in-flight run ends.

        Safe to call from a signal handler registered on the loop; for
        cross-thread use go through :meth:`request_drain_threadsafe`.
        Idempotent -- a second SIGTERM during a drain changes nothing.
        """
        if self._draining:
            return
        self._draining = True
        self._drain_began = time.monotonic()
        obs_events.emit(
            "service.drain_begin",
            queued=self._queued_total,
            running=self._running.digest if self._running else None,
        )
        if self._server is not None:
            self._server.close()
        self._wake.set()

    def request_drain_threadsafe(self) -> None:
        """Trigger :meth:`begin_drain` from any thread.  A no-op once
        the loop is gone -- draining a drained server is not an error."""
        if self._loop is None:
            return
        try:
            self._loop.call_soon_threadsafe(self.begin_drain)
        except RuntimeError:  # loop already closed
            pass

    # --- connection handling ------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._next_client_id += 1
        conn = _Connection(self._next_client_id, writer)
        self._connections[conn.id] = conn
        task = asyncio.current_task()
        self._handler_tasks.add(task)
        obs_events.emit("service.client_connect", client=conn.id)
        try:
            while True:
                try:
                    request = await protocol.read_frame(
                        reader, self.config.max_frame_bytes
                    )
                except protocol.ProtocolError as exc:
                    # Oversized or malformed: answer, count, and close
                    # *this* connection only.  The event loop, the
                    # executor and every other client are untouched.
                    self.protocol_errors += 1
                    self._count("protocol_errors")
                    obs_events.emit(
                        "service.protocol_error",
                        client=conn.id,
                        error_type=type(exc).__name__,
                    )
                    await conn.send({"ok": False, "error": str(exc)})
                    break
                if request is None:
                    break
                await self._dispatch(conn, request)
        finally:
            conn.open = False
            self._connections.pop(conn.id, None)
            self._handler_tasks.discard(task)
            await self._cancel_queued_for(conn)
            obs_events.emit("service.client_disconnect", client=conn.id)
            try:
                writer.close()
            except Exception:  # pragma: no cover - defensive
                pass

    async def _dispatch(
        self, conn: _Connection, request: Dict[str, object]
    ) -> None:
        op = request.get("op")
        if op == "ping":
            await conn.send(
                {"ok": True, "op": "ping",
                 "version": protocol.PROTOCOL_VERSION}
            )
        elif op == "status":
            await conn.send(
                {"ok": True, "op": "status", "status": self.status()}
            )
        elif op == "drain":
            self.begin_drain()
            await conn.send({"ok": True, "op": "drain", "draining": True})
        elif op == "submit":
            await self._handle_submit(conn, request)
        else:
            # Unknown verbs are survivable: answer and keep serving.
            await conn.send(
                {"ok": False, "op": str(op), "error": f"unknown op {op!r}"}
            )

    # --- submission ---------------------------------------------------------

    async def _handle_submit(
        self, conn: _Connection, request: Dict[str, object]
    ) -> None:
        wire_specs = request.get("specs")
        if not isinstance(wire_specs, list) or not wire_specs:
            await conn.send(
                {"ok": False, "op": "submit",
                 "error": "'specs' must be a non-empty list"}
            )
            return
        if self._draining:
            await conn.send(
                {"ok": False, "op": "submit", "draining": True,
                 "error": "server is draining; resubmit after restart"}
            )
            return
        # Validate the whole submission before admitting any of it: a
        # malformed spec rejects the batch atomically, so the client
        # never has to reason about partially admitted sweeps.
        try:
            specs = [protocol.spec_from_wire(wire) for wire in wire_specs]
        except protocol.SpecError as exc:
            await conn.send(
                {"ok": False, "op": "submit", "error": str(exc)}
            )
            return
        digests = [spec_digest(spec) for spec in specs]

        # Admission control *before* side effects: count how many new
        # jobs this submission creates (in-submission duplicates and
        # in-flight digests join existing jobs; cached digests cost
        # nothing) and shed the whole batch if they do not fit.
        new_digests = []
        seen = set()
        for digest in digests:
            if digest in seen or digest in self._jobs:
                continue
            if digest in self.cache:
                continue
            seen.add(digest)
            new_digests.append(digest)
        if self._queued_total + len(new_digests) > self.config.max_queue:
            self.shed += 1
            self._count("shed")
            obs_events.emit(
                "service.busy_shed",
                client=conn.id,
                queued=self._queued_total,
                refused=len(new_digests),
            )
            await conn.send(
                {"ok": False, "op": "submit", "busy": True,
                 "error": (
                     f"admission queue full "
                     f"({self._queued_total}/{self.config.max_queue}); "
                     f"retry later"
                 )}
            )
            return

        await conn.send(
            {"ok": True, "op": "submit", "accepted": len(specs),
             "digests": digests, "new_jobs": len(new_digests)}
        )
        obs_events.emit(
            "service.submit",
            client=conn.id,
            n_specs=len(specs),
            new_jobs=len(new_digests),
        )
        for index, (spec, digest) in enumerate(zip(specs, digests)):
            job = self._jobs.get(digest)
            if job is not None:
                job.waiters.append((conn, index))
                self.dedup_joins += 1
                self._count("dedup_joins")
                continue
            cached = self.cache.get(digest)
            if cached is not None:
                self._count("cache_hits")
                obs_events.emit("service.cache_hit", digest=digest)
                await conn.send(self._result_frame(index, digest, cached,
                                                   cached_hit=True))
                continue
            self._count("cache_misses")
            self._enqueue(_Job(digest=digest, spec=spec, owner=conn.id,
                               waiters=[(conn, index)]))
        self._wake.set()

    def _result_frame(
        self, index: int, digest: str, result, cached_hit: bool
    ) -> Dict[str, object]:
        frame: Dict[str, object] = {
            "ok": True,
            "op": "result",
            "index": index,
            "digest": digest,
            "cached": cached_hit,
            "result": result.to_json_dict(),
        }
        kind = getattr(result, "journal_kind", None)
        if kind is not None:
            frame["kind"] = kind
        return frame

    # --- scheduling ---------------------------------------------------------

    def _enqueue(self, job: _Job) -> None:
        self._jobs[job.digest] = job
        queue = self._queues.get(job.owner)
        if queue is None:
            queue = self._queues[job.owner] = deque()
            self._rr.append(job.owner)
        queue.append(job)
        self._queued_total += 1
        self._gauge_queue()

    def _pop_next_job(self) -> Optional[_Job]:
        """Next job under per-client round-robin: take the head of the
        front client's queue, then move that client to the back."""
        if not self._rr:
            return None
        cid = self._rr[0]
        queue = self._queues[cid]
        job = queue.popleft()
        if queue:
            self._rr.rotate(-1)
        else:
            self._rr.popleft()
            del self._queues[cid]
        self._queued_total -= 1
        self._gauge_queue()
        return job

    def _remove_queued(self, job: _Job) -> None:
        queue = self._queues.get(job.owner)
        if queue is None:  # pragma: no cover - bookkeeping invariant
            return
        queue.remove(job)
        if not queue:
            self._rr.remove(job.owner)
            del self._queues[job.owner]
        self._queued_total -= 1
        self._gauge_queue()

    async def _cancel_queued_for(self, conn: _Connection) -> None:
        """Client gone: cancel its *queued* jobs.  A running job always
        completes (the result is cached for whoever asks next), and a
        queued job another client also waits on survives -- only this
        client's interest is withdrawn."""
        for digest, job in list(self._jobs.items()):
            before = len(job.waiters)
            job.waiters = [
                (c, i) for c, i in job.waiters if c is not conn
            ]
            if len(job.waiters) == before or job.state != "queued":
                continue
            if job.waiters:
                continue
            self._remove_queued(job)
            del self._jobs[digest]
            self.cancelled += 1
            self._count("cancelled")
            obs_events.emit(
                "service.job_cancelled", digest=digest, client=conn.id
            )

    async def _next_job(self) -> Optional[_Job]:
        while True:
            if self._draining:
                await self._refuse_queued()
                return None
            job = self._pop_next_job()
            if job is not None:
                return job
            self._wake.clear()
            # Re-check under the cleared event: an enqueue or drain
            # racing the clear sets it again and we fall through.
            if self._draining or self._rr:
                continue
            await self._wake.wait()

    async def _refuse_queued(self) -> None:
        """Drain semantics for queued-but-unstarted jobs: tell every
        waiter explicitly instead of going dark."""
        while True:
            job = self._pop_next_job()
            if job is None:
                return
            del self._jobs[job.digest]
            self.cancelled += 1
            for conn, index in job.waiters:
                await conn.send(
                    {"ok": False, "op": "result", "index": index,
                     "digest": job.digest, "cached": False,
                     "error": "server draining before this job started; "
                              "resubmit after restart"}
                )

    # --- execution ----------------------------------------------------------

    async def _executor_loop(self) -> None:
        while True:
            job = await self._next_job()
            if job is None:
                return
            job.state = "running"
            self._running = job
            obs_events.emit(
                "service.run_start",
                digest=job.digest,
                benchmark=job.spec.workload_name,
            )
            try:
                outcome = await self._loop.run_in_executor(
                    None, self._execute, job.spec
                )
            except BaseException as exc:  # noqa: BLE001 - runner seam
                outcome = exc
            self._running = None
            await self._finish_job(job, outcome)

    def _execute(self, spec):
        """Blocking execution of one job (runs on a worker thread)."""
        if self.config.runner is not None:
            return self.config.runner(spec)
        from repro.sim.batch import run_many

        return run_many(
            [spec],
            processes=self.config.processes,
            lockstep=False,
            timeout_s=self.config.timeout_s,
            retries=self.config.retries,
            backoff_s=self.config.backoff_s,
            backoff_max_s=self.config.backoff_max_s,
            partial_results=True,
            journal=str(self.journal_path),
        )[0]

    async def _finish_job(self, job: _Job, outcome) -> None:
        del self._jobs[job.digest]
        job.state = "done"
        if isinstance(outcome, RunFailure):
            error = f"{outcome.error_type}: {outcome.message}"
        elif isinstance(outcome, BaseException):
            error = f"{type(outcome).__name__}: {outcome}"
        else:
            error = None
        if error is not None:
            # Failures are answered but never cached: a resubmission
            # after the fault clears must re-execute, not replay the
            # failure.
            self.jobs_failed += 1
            self._count("jobs_failed")
            obs_events.emit(
                "service.job_failed", digest=job.digest, error=error
            )
            for conn, index in job.waiters:
                await conn.send(
                    {"ok": False, "op": "result", "index": index,
                     "digest": job.digest, "cached": False, "error": error}
                )
            return
        self.cache.put(job.digest, outcome)
        self.jobs_done += 1
        self._count("jobs_done")
        obs_events.emit("service.job_done", digest=job.digest)
        for conn, index in job.waiters:
            await conn.send(
                self._result_frame(index, job.digest, outcome,
                                   cached_hit=False)
            )

    # --- status -------------------------------------------------------------

    def status(self) -> Dict[str, object]:
        """The ``/healthz``-style liveness snapshot the STATUS verb
        returns."""
        return {
            "pid": os.getpid(),
            "address": self.address,
            "uptime_s": time.monotonic() - self._started,
            "draining": self._draining,
            "queue_depth": self._queued_total,
            "running": self._running.digest if self._running else None,
            "clients": len(self._connections),
            "jobs_done": self.jobs_done,
            "jobs_failed": self.jobs_failed,
            "cancelled": self.cancelled,
            "shed": self.shed,
            "dedup_joins": self.dedup_joins,
            "protocol_errors": self.protocol_errors,
            "cache": self.cache.stats(),
            "journal": str(self.journal_path),
            "version": protocol.PROTOCOL_VERSION,
        }


class ServerThread:
    """A :class:`SweepService` on a background thread's event loop.

    The embedding used by the test suite (and available to library
    callers): start, talk to it over its socket from the calling
    thread, then :meth:`stop` for a graceful drain.
    """

    def __init__(self, config: ServiceConfig):
        self.service = SweepService(config)
        self.exit_code: Optional[int] = None
        self.error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )

    def _run(self) -> None:
        try:
            self.exit_code = asyncio.run(self.service.run())
        except BaseException as exc:  # noqa: BLE001 - surfaced by start()
            self.error = exc

    def start(self, timeout: float = 30.0) -> "ServerThread":
        self._thread.start()
        deadline = time.monotonic() + timeout
        while not self.service.ready.wait(0.05):
            if not self._thread.is_alive():
                if self.error is not None:
                    raise self.error
                raise SimulationError("service thread died during startup")
            if time.monotonic() > deadline:
                raise SimulationError("service failed to start listening")
        return self

    def stop(self, timeout: float = 60.0) -> Optional[int]:
        """Graceful drain; returns the exit code (None on join timeout)."""
        self.service.request_drain_threadsafe()
        self._thread.join(timeout)
        return self.exit_code

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
