"""Dynamic thermal management techniques.

All techniques implement :class:`~repro.dtm.base.DtmPolicy`: given the
latest sensor readings they return the operating point (fetch-gating duty,
supply voltage, clock-enable fraction) the engine should apply.  Switching
mechanics -- the 10 us DVS stall or delayed-effect window -- are applied by
the simulation engine, not the policies, because they are properties of the
voltage regulation hardware, not of the control law.

Techniques (paper, Section 4):

* :class:`DvsPolicy` -- binary or multi-step dynamic voltage scaling with a
  PI controller and a low-pass filter on voltage increases;
* :class:`FetchGatingPolicy` -- integral-controlled fetch duty cycle;
* :class:`ClockGatingPolicy` -- Pentium 4-style global clock gating;
* :class:`HybPolicy` -- the paper's contribution: a fixed fetch-gating
  level between two thresholds and binary DVS above the second, with no
  feedback control at all;
* :class:`PIHybPolicy` -- feedback-controlled fetch gating up to the
  crossover duty cycle, then DVS;
* :class:`PredictiveHybPolicy` -- extension (paper future work): the
  hybrid driven by a short-horizon temperature forecast;
* :class:`NoDtmPolicy` -- the always-nominal baseline.
"""

from repro.dtm.base import DtmCommand, DtmPolicy
from repro.dtm.thresholds import ThermalThresholds
from repro.dtm.controllers import IntegralController, LowPassFilter, PIController
from repro.dtm.none import NoDtmPolicy
from repro.dtm.dvs import DvsConfig, DvsPolicy
from repro.dtm.fetch_gating import FetchGatingConfig, FetchGatingPolicy
from repro.dtm.clock_gating import ClockGatingConfig, ClockGatingPolicy
from repro.dtm.hybrid import HybConfig, HybPolicy, PIHybConfig, PIHybPolicy
from repro.dtm.predictive import PredictiveHybConfig, PredictiveHybPolicy
from repro.dtm.local_toggling import LocalTogglingConfig, LocalTogglingPolicy
from repro.dtm.domains import CLOCK_DOMAINS, domain_criticality, domain_of
from repro.dtm.migration import MigrationConfig, MigrationPolicy

__all__ = [
    "DtmCommand",
    "DtmPolicy",
    "ThermalThresholds",
    "PIController",
    "IntegralController",
    "LowPassFilter",
    "NoDtmPolicy",
    "DvsConfig",
    "DvsPolicy",
    "FetchGatingConfig",
    "FetchGatingPolicy",
    "ClockGatingConfig",
    "ClockGatingPolicy",
    "HybConfig",
    "HybPolicy",
    "PIHybConfig",
    "PIHybPolicy",
    "PredictiveHybConfig",
    "PredictiveHybPolicy",
    "LocalTogglingConfig",
    "LocalTogglingPolicy",
    "CLOCK_DOMAINS",
    "domain_of",
    "domain_criticality",
    "MigrationConfig",
    "MigrationPolicy",
]
