"""Fast interval performance engine.

Advances the machine one thermal step at a time (the paper's 10 000-cycle
power-averaging interval).  Per interval it computes committed instructions
and per-block activities from the current phase's calibrated performance
model and the DTM actuation in force:

* fetch gating moves cycle-IPC along the phase's ILP-response curve;
* DVS changes the clock, which re-weights the fixed-wall-clock memory
  component of CPI (memory-bound phases lose less from a slower clock);
* global clock gating scales both progress and switching by the enabled
  fraction.

The phase objects are duck-typed (see :class:`PhasePerformance` for the
required attributes) so this module stays independent of
:mod:`repro.workloads`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Protocol, Sequence

from repro.errors import SimulationError, WorkloadError
from repro.uarch.activity import ActivityModel
from repro.uarch.ilp_response import IlpResponse


class PhasePerformance(Protocol):
    """What the interval engine needs from a workload phase."""

    name: str
    instructions: int
    base_ipc: float
    memory_cpi_fraction: float

    @property
    def ilp_response(self) -> IlpResponse:  # pragma: no cover - protocol
        ...

    @property
    def activity_model(self) -> ActivityModel:  # pragma: no cover - protocol
        ...


@dataclass(frozen=True)
class DtmActuation:
    """The operating point a DTM policy has set for an interval.

    ``domain_gating`` carries local-toggling duties per clock domain
    (see :mod:`repro.dtm.domains`); empty for every other technique.
    """

    gating_fraction: float = 0.0
    relative_frequency: float = 1.0
    clock_enabled_fraction: float = 1.0
    domain_gating: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 <= self.gating_fraction < 1.0:
            raise SimulationError("gating fraction must be in [0, 1)")
        if not 0.0 < self.relative_frequency <= 1.0:
            raise SimulationError("relative frequency must be in (0, 1]")
        if not 0.0 <= self.clock_enabled_fraction <= 1.0:
            raise SimulationError("clock enabled fraction must be in [0, 1]")
        object.__setattr__(self, "domain_gating", dict(self.domain_gating))
        for domain, duty in self.domain_gating.items():
            if not 0.0 <= duty < 1.0:
                raise SimulationError(
                    f"domain {domain!r} toggle duty must be in [0, 1)"
                )


@dataclass
class IntervalSample:
    """Result of advancing the engine by one interval."""

    cycles: int
    instructions: float
    activities: Dict[str, float]
    fetch_rate_rel: float
    commit_rate_rel: float
    phase_name: str


class IntervalPerformanceModel:
    """Phase-by-phase interval simulation of one workload.

    Parameters
    ----------
    phases:
        The workload's phases in execution order.
    loop:
        When True (default), the phase sequence repeats, modelling the
        periodic behaviour SimPoint samples exhibit; when False the engine
        raises once all instructions are consumed.
    """

    def __init__(self, phases: Sequence[PhasePerformance], loop: bool = True):
        if not phases:
            raise WorkloadError("workload has no phases")
        for phase in phases:
            if phase.instructions <= 0:
                raise WorkloadError(f"phase {phase.name!r} has no instructions")
            if phase.base_ipc <= 0.0:
                raise WorkloadError(f"phase {phase.name!r} has non-positive IPC")
            if not 0.0 <= phase.memory_cpi_fraction < 1.0:
                raise WorkloadError(
                    f"phase {phase.name!r}: memory CPI fraction outside [0, 1)"
                )
        self._phases = list(phases)
        self._loop = loop
        self._phase_index = 0
        self._instructions_left = float(self._phases[0].instructions)
        self._total_instructions = 0.0
        # One-entry CPI cache: the engine reuses the same actuation object
        # while the policy holds its command steady, so (phase, actuation)
        # identity pins down the CPI for long stretches of steps.  Strong
        # references keep the ``is`` checks sound.
        self._cpi_cache: tuple = (None, None, 0.0)

    @property
    def total_instructions(self) -> float:
        """Instructions committed since construction."""
        return self._total_instructions

    @property
    def current_phase(self) -> PhasePerformance:
        """The phase currently executing."""
        return self._phases[self._phase_index]

    @staticmethod
    def _domain_throughput_factor(
        phase: PhasePerformance, actuation: DtmActuation
    ) -> float:
        """Commit-throughput multiplier from local toggling: each gated
        domain removes ``duty * criticality`` of throughput."""
        if not actuation.domain_gating:
            return 1.0
        from repro.dtm.domains import domain_criticality

        factor = 1.0
        base = phase.activity_model.base_activities
        for domain, duty in actuation.domain_gating.items():
            factor *= 1.0 - duty * domain_criticality(domain, base)
        return max(factor, 1e-6)

    def _cpi(self, phase: PhasePerformance, actuation: DtmActuation) -> float:
        """Cycles per instruction under the actuation, at the *current*
        clock (cycle counts, not wall clock)."""
        c_phase, c_act, c_val = self._cpi_cache
        if phase is c_phase and actuation is c_act:
            return c_val
        cpi0 = 1.0 / phase.base_ipc
        cpi_mem0 = phase.memory_cpi_fraction * cpi0
        ipc_gated = phase.base_ipc * phase.ilp_response.ipc_rel(
            actuation.gating_fraction
        )
        cpi_core = max(1.0 / ipc_gated - cpi_mem0, 1e-6)
        cpi = cpi_core + cpi_mem0 * actuation.relative_frequency
        cpi /= self._domain_throughput_factor(phase, actuation)
        self._cpi_cache = (phase, actuation, cpi)
        return cpi

    def run_length(self, cycles: int, actuation: DtmActuation) -> int:
        """How many consecutive :meth:`advance` calls of ``cycles`` under
        ``actuation`` are guaranteed to stay inside the current phase on
        the single-chunk fast path (identical CPI, identical activities,
        identical per-interval instructions).

        The engine's constant-power fast-forward uses this to size a
        closed-form jump without crossing a phase boundary; the estimate
        is strict (the boundary step itself is excluded) so the jumped
        span is exactly equivalent to the explicit steps.
        """
        if cycles <= 0:
            raise SimulationError("interval length must be > 0")
        remaining = float(cycles) * actuation.clock_enabled_fraction
        if remaining <= 1e-9:
            return 0
        cpi = self._cpi(self.current_phase, actuation)
        per_step = remaining / cpi
        count = int(self._instructions_left / per_step)
        # advance() only takes the fast path while the interval's
        # instructions fit *strictly* inside the phase remainder.
        while count > 0 and count * per_step >= self._instructions_left:
            count -= 1
        return count

    def span_instructions(
        self, cycles: int, actuation: DtmActuation
    ) -> float:
        """Instructions one :meth:`fast_forward` interval would commit
        under ``actuation`` in the current phase (the fast-path
        :meth:`advance` commit).

        The engine sizes a prospective jump's budget cap with this
        rather than the *last* dense sample: a boundary-crossing step
        commits a blend of two phases' rates, and capping with the
        blended value lets the span's (clean) rate overshoot the
        instruction budget.
        """
        if cycles <= 0:
            raise SimulationError("interval length must be > 0")
        remaining = float(cycles) * actuation.clock_enabled_fraction
        if remaining <= 1e-9:
            return 0.0
        return remaining / self._cpi(self.current_phase, actuation)

    def fast_forward(
        self, cycles: int, actuation: DtmActuation, repeats: int
    ) -> float:
        """Advance ``repeats`` identical intervals known to stay in the
        current phase in O(1); returns the instructions committed *per
        interval* (all intervals in the span commit the same amount).

        Callers must bound ``repeats`` by :meth:`run_length` first;
        crossing a phase boundary raises.
        """
        if repeats < 1:
            raise SimulationError("fast-forward needs >= 1 interval")
        if cycles <= 0:
            raise SimulationError("interval length must be > 0")
        remaining = float(cycles) * actuation.clock_enabled_fraction
        if remaining <= 1e-9:
            raise SimulationError("cannot fast-forward a fully gated interval")
        cpi = self._cpi(self.current_phase, actuation)
        per_step = remaining / cpi
        total = per_step * repeats
        if total >= self._instructions_left:
            raise SimulationError(
                "fast-forward span crosses a phase boundary; bound repeats "
                "with run_length()"
            )
        self._instructions_left -= total
        self._total_instructions += total
        return per_step

    def _advance_phase(self) -> None:
        self._phase_index += 1
        if self._phase_index >= len(self._phases):
            if not self._loop:
                raise SimulationError("workload exhausted (loop=False)")
            self._phase_index = 0
        self._instructions_left = float(self._phases[self._phase_index].instructions)

    def advance(self, cycles: int, actuation: DtmActuation) -> IntervalSample:
        """Advance by ``cycles`` clock cycles under ``actuation``.

        When a phase boundary falls inside the interval, the interval is
        split and activities are blended cycle-weighted.
        """
        if cycles <= 0:
            raise SimulationError("interval length must be > 0")
        remaining = float(cycles) * actuation.clock_enabled_fraction

        # Fast path: the whole interval fits inside the current phase (the
        # overwhelmingly common case -- phases are tens of millions of
        # instructions, intervals are 10 000 cycles).  Cycle-weighted
        # blending over a single chunk is the identity, so skip it.
        if remaining > 1e-9:
            phase = self.current_phase
            cpi = self._cpi(phase, actuation)
            possible = remaining / cpi
            if possible < self._instructions_left:
                self._instructions_left -= possible
                fetch_rel = 1.0 - actuation.gating_fraction
                commit_rel = min((1.0 / cpi) / phase.base_ipc, 1.0)
                acts = phase.activity_model.activities(fetch_rel, commit_rel)
                self._total_instructions += possible
                return IntervalSample(
                    cycles=cycles,
                    instructions=possible,
                    activities=acts,
                    fetch_rate_rel=fetch_rel,
                    commit_rate_rel=commit_rel,
                    phase_name=phase.name,
                )

        instructions = 0.0
        weighted_activities: Dict[str, float] = {}
        weighted_fetch = 0.0
        weighted_commit = 0.0
        consumed = 0.0
        start_phase = self.current_phase.name

        while remaining > 1e-9:
            phase = self.current_phase
            cpi = self._cpi(phase, actuation)
            possible = remaining / cpi
            if possible >= self._instructions_left:
                chunk_instr = self._instructions_left
                chunk_cycles = chunk_instr * cpi
                self._advance_phase()
            else:
                chunk_instr = possible
                chunk_cycles = remaining
                self._instructions_left -= chunk_instr
            fetch_rel = 1.0 - actuation.gating_fraction
            commit_rel = (1.0 / cpi) / phase.base_ipc
            # Domain gating's power effect is applied by the engine as a
            # per-block clock gate; activities here describe switching
            # while the domain's clock runs.
            acts = phase.activity_model.activities(fetch_rel, min(commit_rel, 1.0))
            for block, value in acts.items():
                weighted_activities[block] = (
                    weighted_activities.get(block, 0.0) + value * chunk_cycles
                )
            weighted_fetch += fetch_rel * chunk_cycles
            weighted_commit += min(commit_rel, 1.0) * chunk_cycles
            instructions += chunk_instr
            consumed += chunk_cycles
            remaining -= chunk_cycles

        if consumed > 0.0:
            activities = {
                block: value / consumed
                for block, value in weighted_activities.items()
            }
            fetch_rate = weighted_fetch / consumed
            commit_rate = weighted_commit / consumed
        else:
            # Fully clock-gated interval: no switching at all.
            activities = {
                block: 0.0
                for block in self.current_phase.activity_model.base_activities
            }
            fetch_rate = 0.0
            commit_rate = 0.0

        self._total_instructions += instructions
        return IntervalSample(
            cycles=cycles,
            instructions=instructions,
            activities=activities,
            fetch_rate_rel=fetch_rate,
            commit_rate_rel=commit_rate,
            phase_name=start_phase,
        )
