"""Table rendering."""

import pytest

from repro.analysis import render_table
from repro.errors import ReproError


def test_renders_aligned_columns():
    text = render_table(
        ["bench", "slowdown"],
        [["gzip", 1.0944], ["art", 1.0774]],
    )
    lines = text.splitlines()
    assert lines[0].startswith("bench")
    assert "1.0944" in text
    assert all(len(line) <= len(lines[0]) + 20 for line in lines)


def test_floats_have_four_decimals():
    text = render_table(["x"], [[1.5]])
    assert "1.5000" in text


def test_title_line():
    text = render_table(["a"], [[1]], title="Figure 4a")
    assert text.splitlines()[0] == "Figure 4a"


def test_empty_rows_allowed():
    text = render_table(["a", "b"], [])
    assert "a" in text and "b" in text


def test_rejects_missing_headers():
    with pytest.raises(ReproError):
        render_table([], [[1]])


def test_rejects_ragged_rows():
    with pytest.raises(ReproError):
        render_table(["a", "b"], [[1]])
