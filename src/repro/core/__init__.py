"""The paper's contribution-level API.

High-level entry points a user of the library calls directly:

* :func:`repro.core.policies.make_policy` -- construct any of the paper's
  DTM techniques by name;
* :mod:`repro.core.evaluation` -- run a technique (or all of them) over
  the benchmark suite and compute slowdown factors;
* :mod:`repro.core.crossover` -- the Section 5.1 crossover-point search;
* :mod:`repro.core.metrics` -- slowdown factors, DTM overhead and the
  paper's "reduction in DTM overhead" metric.
"""

from repro.core.metrics import (
    dtm_overhead,
    mean_slowdown,
    overhead_reduction,
    slowdown_factor,
)
from repro.core.policies import POLICY_NAMES, make_policy
from repro.core.evaluation import (
    BenchmarkEvaluation,
    SuiteEvaluation,
    evaluate_policy,
    evaluate_techniques,
    run_baselines,
)
from repro.core.crossover import CrossoverResult, find_crossover, sweep_duty_cycles

__all__ = [
    "slowdown_factor",
    "dtm_overhead",
    "overhead_reduction",
    "mean_slowdown",
    "make_policy",
    "POLICY_NAMES",
    "BenchmarkEvaluation",
    "SuiteEvaluation",
    "evaluate_policy",
    "evaluate_techniques",
    "run_baselines",
    "CrossoverResult",
    "find_crossover",
    "sweep_duty_cycles",
]
