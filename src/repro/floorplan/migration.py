"""Floorplan variant with a spare integer register file for activity
migration.

The paper's related work includes "migrating computation" (Heo/Barr/
Asanovic; Lim/Daasch/Cai; Skadron et al.); the paper excludes it because
of "the cost-benefit concerns of adding extra hardware".  This floorplan
supplies that extra hardware so the library can measure the technique:
the top row of the core carries two register-file copies, the primary in
its usual spot and a spare in the cool corner next to the right L2 bank,
with the integer execution units between them.
"""

from __future__ import annotations

from typing import List

from repro.floorplan.alpha21364 import _BLOCK_GEOMETRY_MM
from repro.floorplan.block import Block
from repro.floorplan.floorplan import Floorplan
from repro.units import MM

SPARE_REGISTER_FILE = "IntRegB"
"""Name of the spare register-file block."""

# The migration variant re-tiles the 6.2 mm top row of the core:
# IntReg (1.6) | IntExec (3.0) | IntRegB (1.6), all 1.9 mm tall.
_TOP_ROW_MM = (
    ("IntReg", 4.9, 14.1, 1.6, 1.9),
    ("IntExec", 6.5, 14.1, 3.0, 1.9),
    (SPARE_REGISTER_FILE, 9.5, 14.1, 1.6, 1.9),
)


def build_migration_floorplan() -> Floorplan:
    """The Alpha floorplan with a spare integer register file.

    Identical to :func:`~repro.floorplan.alpha21364.build_alpha21364_floorplan`
    outside the core's top row; still tiles the die exactly.
    """
    replaced = {name for name, *_ in _TOP_ROW_MM}
    blocks: List[Block] = [
        Block(name=name, x=x * MM, y=y * MM, width=w * MM, height=h * MM)
        for name, x, y, w, h in _BLOCK_GEOMETRY_MM
        if name not in replaced
    ]
    blocks.extend(
        Block(name=name, x=x * MM, y=y * MM, width=w * MM, height=h * MM)
        for name, x, y, w, h in _TOP_ROW_MM
    )
    return Floorplan(blocks, name="alpha21364-migration")
