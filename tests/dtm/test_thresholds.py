"""Thermal thresholds."""

import pytest

from repro.dtm import ThermalThresholds
from repro.errors import DtmConfigError


def test_defaults_match_paper():
    t = ThermalThresholds()
    assert t.emergency_c == 85.0
    assert t.practical_limit_c == 82.0
    assert t.trigger_c == 81.8


def test_sensor_margin():
    assert ThermalThresholds().sensor_margin_c == pytest.approx(3.0)


def test_above_trigger():
    t = ThermalThresholds()
    assert t.above_trigger(81.9)
    assert not t.above_trigger(81.8)


def test_in_violation():
    t = ThermalThresholds()
    assert t.in_violation(85.01)
    assert not t.in_violation(85.0)


def test_rejects_inverted_ordering():
    with pytest.raises(DtmConfigError):
        ThermalThresholds(emergency_c=80.0, practical_limit_c=82.0, trigger_c=81.8)
    with pytest.raises(DtmConfigError):
        ThermalThresholds(trigger_c=83.0)
