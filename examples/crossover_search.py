"""Crossover-point search (the paper's Section 5.1 methodology, reduced).

Sweeps PI-Hyb's maximum fetch-gating duty cycle over a three-benchmark
subset and prints the slowdown at each point; the crossover is where
gating harder stops paying and DVS should take over.

Run:  python examples/crossover_search.py
"""

from repro.analysis import render_table
from repro.core import find_crossover, sweep_duty_cycles
from repro.core.evaluation import run_baselines
from repro.workloads import build_benchmark

DUTY_CYCLES = (20.0, 10.0, 5.0, 3.0, 2.0, 1.5)
BENCHMARKS = ("gzip", "vortex", "art")
INSTRUCTIONS = 6_000_000


def main() -> None:
    suite = [build_benchmark(name) for name in BENCHMARKS]
    print(f"computing baselines for {', '.join(BENCHMARKS)} ...")
    baselines = run_baselines(
        suite=suite, instructions=INSTRUCTIONS, settle_time_s=1.5e-3
    )
    print("sweeping duty cycles ...")
    result = sweep_duty_cycles(duty_cycles=DUTY_CYCLES, baselines=baselines)

    rows = []
    for duty in DUTY_CYCLES:
        evaluation = result.evaluations[duty]
        rows.append(
            [duty, evaluation.mean_slowdown, evaluation.total_violations]
        )
    print()
    print(render_table(
        ["max duty cycle", "mean slowdown", "violations"],
        rows,
        title="PI-Hyb duty-cycle sweep (DVS-stall)",
    ))
    crossover = find_crossover(result)
    print(f"\ncrossover duty cycle: {crossover:g} "
          f"(deepest gating still near the sweep optimum)")
    print("the paper finds duty cycle 3 for DVS with switching stalls")


if __name__ == "__main__":
    main()
