"""DVS policy."""

import pytest

from repro.dtm import DvsConfig, DvsPolicy, ThermalThresholds
from repro.dtm.dvs import CONTINUOUS_LEVEL_COUNT
from repro.errors import DtmConfigError

TRIGGER = ThermalThresholds().trigger_c


def readings(temp):
    return {"IntReg": temp}


class TestConfig:
    def test_defaults(self):
        config = DvsConfig()
        assert config.level_count == 2
        assert config.v_low_ratio == pytest.approx(0.85)

    def test_continuous_helper(self):
        assert DvsConfig.continuous().level_count == CONTINUOUS_LEVEL_COUNT

    def test_rejects_single_level(self):
        with pytest.raises(DtmConfigError):
            DvsConfig(level_count=1)

    def test_rejects_bad_ratio(self):
        with pytest.raises(DtmConfigError):
            DvsConfig(v_low_ratio=1.0)


class TestBinary:
    @pytest.fixture()
    def policy(self):
        return DvsPolicy()

    def test_starts_at_nominal(self, policy):
        assert policy.voltages[-1] == pytest.approx(1.3)
        cmd = policy.update(readings(70.0), 0.0, 1e-4)
        assert cmd.voltage == pytest.approx(1.3)
        assert cmd.gating_fraction == 0.0

    def test_drops_immediately_above_trigger(self, policy):
        cmd = policy.update(readings(TRIGGER + 0.1), 0.0, 1e-4)
        assert cmd.voltage == pytest.approx(0.85 * 1.3)

    def test_single_cool_reading_does_not_raise_voltage(self, policy):
        policy.update(readings(TRIGGER + 1.0), 0.0, 1e-4)
        # One cool reading: the low-pass filter still remembers the heat.
        cmd = policy.update(readings(TRIGGER - 0.5), 1e-4, 1e-4)
        assert cmd.voltage == pytest.approx(0.85 * 1.3)

    def test_sustained_cool_readings_raise_voltage(self, policy):
        policy.update(readings(TRIGGER + 1.0), 0.0, 1e-4)
        cmd = None
        for i in range(40):
            cmd = policy.update(readings(TRIGGER - 1.5), (i + 1) * 1e-4, 1e-4)
        assert cmd.voltage == pytest.approx(1.3)

    def test_hottest_block_drives_decision(self, policy):
        cmd = policy.update(
            {"IntReg": TRIGGER + 0.5, "L2": 60.0}, 0.0, 1e-4
        )
        assert cmd.voltage < 1.3

    def test_reset_returns_to_nominal(self, policy):
        policy.update(readings(TRIGGER + 1.0), 0.0, 1e-4)
        policy.reset()
        assert policy.current_level == len(policy.voltages) - 1


class TestMultiStep:
    def test_has_requested_levels(self):
        policy = DvsPolicy(DvsConfig(level_count=5))
        assert len(policy.voltages) == 5
        assert policy.voltages[0] == pytest.approx(0.85 * 1.3)
        assert policy.voltages[-1] == pytest.approx(1.3)

    def test_mild_overheat_uses_intermediate_level(self):
        policy = DvsPolicy(DvsConfig(level_count=10, kp=0.3, ki=200.0))
        cmd = None
        for i in range(3):
            cmd = policy.update(readings(TRIGGER + 0.4), i * 1e-4, 1e-4)
        assert policy.voltages[0] < cmd.voltage < policy.voltages[-1]

    def test_sustained_overheat_reaches_lowest_level(self):
        policy = DvsPolicy(DvsConfig(level_count=5))
        cmd = None
        for i in range(200):
            cmd = policy.update(readings(TRIGGER + 3.0), i * 1e-4, 1e-4)
        assert cmd.voltage == pytest.approx(policy.voltages[0])

    def test_lowering_is_immediate_raising_is_filtered(self):
        policy = DvsPolicy(DvsConfig(level_count=5))
        for i in range(200):
            policy.update(readings(TRIGGER + 3.0), i * 1e-4, 1e-4)
        level_hot = policy.current_level
        # A single cool sample cannot raise the level...
        policy.update(readings(TRIGGER - 3.0), 0.0201, 1e-4)
        assert policy.current_level == level_hot
        # ...but sustained cool samples do.
        for i in range(300):
            policy.update(readings(TRIGGER - 3.0), 0.0202 + i * 1e-4, 1e-4)
        assert policy.current_level > level_hot

    def test_policy_name(self):
        assert DvsPolicy().name == "DVS"
