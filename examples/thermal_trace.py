"""Thermal regulation dynamics: DVS versus hybrid, step by step.

Records the per-step hotspot temperature and actuation for crafty (the
most severe benchmark) under binary DVS and under Hyb, and renders both
as an ASCII strip chart.  You can watch DVS pin the low voltage while the
hybrid splits the work between fetch gating and DVS.

Run:  python examples/thermal_trace.py
"""

from repro import (
    EngineConfig,
    NoDtmPolicy,
    SimulationEngine,
    build_benchmark,
    make_policy,
)

INSTRUCTIONS = 6_000_000
SETTLE_S = 1.5e-3
CHART_WIDTH = 60
TEMP_LO, TEMP_HI = 80.0, 87.0


def strip_chart(trace, label):
    print(f"\n--- {label} ---")
    print(f"temperature axis: {TEMP_LO:.0f} C .. {TEMP_HI:.0f} C, "
          f"trigger 81.8, emergency 85; one row per ~8 thermal steps")
    print("state: '.'=nominal  'g'=fetch gated  'V'=low voltage")
    for point in trace[::8]:
        span = TEMP_HI - TEMP_LO
        column = int(
            (min(max(point.hottest_temp_c, TEMP_LO), TEMP_HI) - TEMP_LO)
            / span * (CHART_WIDTH - 1)
        )
        if point.voltage < 1.3 - 1e-9:
            state = "V"
        elif point.gating_fraction > 0.0:
            state = "g"
        else:
            state = "."
        line = [" "] * CHART_WIDTH
        trigger_col = int((81.8 - TEMP_LO) / span * (CHART_WIDTH - 1))
        emergency_col = int((85.0 - TEMP_LO) / span * (CHART_WIDTH - 1))
        line[trigger_col] = "|"
        line[emergency_col] = "!"
        line[column] = "*"
        print(f"{point.time_s * 1e3:7.3f} ms {state} {''.join(line)} "
              f"{point.hottest_temp_c:6.2f}")


def main() -> None:
    workload = build_benchmark("crafty")
    baseline_engine = SimulationEngine(workload, policy=NoDtmPolicy())
    initial = baseline_engine.compute_initial_temperatures()

    for name in ("DVS", "Hyb"):
        engine = SimulationEngine(
            workload,
            policy=make_policy(name),
            config=EngineConfig(record_trace=True),
        )
        run = engine.run(
            INSTRUCTIONS, initial=initial.copy(), settle_time_s=SETTLE_S
        )
        strip_chart(run.trace, f"{name}: crafty, {INSTRUCTIONS / 1e6:.0f}M "
                               f"instructions")
        print(f"violations: {run.violations}, switches: {run.dvs_switches}, "
              f"low-V residency: {run.dvs_low_time_s / run.elapsed_s:.0%}, "
              f"mean gating: {run.mean_gating_fraction:.3f}")


if __name__ == "__main__":
    main()
