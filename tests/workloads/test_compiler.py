"""The workload trace compiler (phase schedules lowered to arrays)."""

import numpy as np
import pytest

from repro.errors import SimulationError, WorkloadError
from repro.uarch.interval import DtmActuation, IntervalPerformanceModel
from repro.workloads import build_benchmark
from repro.workloads.compiler import (
    ACTIVITY_CACHE_SIZE,
    CompiledIntervalModel,
    CompiledSchedule,
    compile_workload,
)


@pytest.fixture(scope="module")
def gcc():
    return build_benchmark("gcc")


@pytest.fixture(scope="module")
def schedule(gcc, floorplan):
    return compile_workload(gcc, floorplan.block_names)


class TestCompileWorkload:
    def test_cached_per_block_order(self, gcc, floorplan, schedule):
        assert compile_workload(gcc, floorplan.block_names) is schedule

    def test_distinct_block_orders_get_distinct_schedules(
        self, gcc, floorplan
    ):
        names = tuple(floorplan.block_names)
        reversed_names = tuple(reversed(names))
        a = compile_workload(gcc, names)
        b = compile_workload(gcc, reversed_names)
        assert a is not b
        assert b.block_names == reversed_names

    def test_rejects_empty_inputs(self, gcc):
        with pytest.raises(WorkloadError):
            CompiledSchedule(gcc.phases, ())
        with pytest.raises(WorkloadError):
            CompiledSchedule([], ("IntReg",))


class TestActivities:
    def test_matches_interpreted_arithmetic_bit_for_bit(self, schedule):
        for k, phase in enumerate(schedule.phases):
            mapping = phase.activity_model.activities(0.75, 0.5)
            vector = schedule.activities(k, 0.75, 0.5)
            reference = schedule.vector_from_mapping(mapping)
            assert np.array_equal(vector, reference)

    def test_clamped_at_one(self, schedule):
        acts = schedule.activities(0, 1.0, 1.0)
        assert float(acts.max()) <= 1.0

    def test_cache_returns_shared_readonly_vector(self, schedule):
        a = schedule.activities(0, 0.9, 0.9)
        b = schedule.activities(0, 0.9, 0.9)
        assert a is b
        assert not a.flags.writeable
        with pytest.raises(ValueError):
            a[0] = 2.0

    def test_cache_is_bounded(self, gcc, floorplan):
        fresh = CompiledSchedule(gcc.phases, tuple(floorplan.block_names))
        for i in range(ACTIVITY_CACHE_SIZE + 16):
            fresh.activities(0, 1.0 - i * 1e-7, 1.0)
        assert len(fresh._act_cache) <= ACTIVITY_CACHE_SIZE

    def test_rejects_negative_rates(self, schedule):
        with pytest.raises(WorkloadError):
            schedule.activities(0, -0.1, 1.0)

    def test_vector_from_mapping_ignores_unknown_blocks(self, schedule):
        out = schedule.vector_from_mapping({"NoSuchBlock": 0.5})
        assert not out.any()

    def test_vector_from_mapping_places_by_block_order(self, schedule):
        name = schedule.block_names[3]
        out = schedule.vector_from_mapping({name: 0.25})
        assert out[3] == 0.25
        assert np.count_nonzero(out) == 1


class TestCompiledIntervalModel:
    def test_lockstep_with_interpreted_model(self, gcc, floorplan):
        schedule = compile_workload(gcc, floorplan.block_names)
        compiled = CompiledIntervalModel(schedule, loop=True)
        interpreted = IntervalPerformanceModel(gcc.phases, loop=True)
        actuations = [
            DtmActuation(),
            DtmActuation(gating_fraction=0.4),
            DtmActuation(relative_frequency=0.7, clock_enabled_fraction=0.9),
        ]
        phase_names = set()
        for i in range(300):
            act = actuations[i % len(actuations)]
            a = compiled.advance(100_000, act)
            b = interpreted.advance(100_000, act)
            assert a.cycles == b.cycles
            assert a.instructions == b.instructions
            assert a.fetch_rate_rel == b.fetch_rate_rel
            assert a.commit_rate_rel == b.commit_rate_rel
            assert a.phase_name == b.phase_name
            assert np.array_equal(
                a.acts, schedule.vector_from_mapping(b.activities)
            )
            phase_names.add(a.phase_name)
        # The walk must cross at least one phase boundary so the
        # delegating slow path is exercised, not just the fast path.
        assert len(phase_names) > 1

    def test_sample_is_reused_in_place(self, gcc, floorplan):
        model = CompiledIntervalModel(
            compile_workload(gcc, floorplan.block_names)
        )
        first = model.advance(10_000, DtmActuation())
        second = model.advance(10_000, DtmActuation(gating_fraction=0.2))
        assert first is second

    def test_verify_mode_accepts_clean_schedule(self, gcc, floorplan):
        model = CompiledIntervalModel(
            compile_workload(gcc, floorplan.block_names), verify=True
        )
        for _ in range(50):
            model.advance(50_000, DtmActuation(gating_fraction=0.3))

    def test_verify_mode_detects_divergence(self, gcc, floorplan):
        tampered = CompiledSchedule(gcc.phases, tuple(floorplan.block_names))
        tampered.base_activities *= 0.5
        model = CompiledIntervalModel(tampered, verify=True)
        with pytest.raises(SimulationError, match="diverged"):
            model.advance(10_000, DtmActuation())

    def test_rejects_non_positive_interval(self, gcc, floorplan):
        model = CompiledIntervalModel(
            compile_workload(gcc, floorplan.block_names)
        )
        with pytest.raises(SimulationError):
            model.advance(0, DtmActuation())
