"""Ablation A8: the package-cost trade DTM enables.

The paper's motivation (Section 1): cooling solutions cost $1-3+ per watt,
and DTM "allows the thermal package to be designed for power densities
exhibited by typical applications" -- a 20 % thermal-design-power cut on
the Pentium 4.  This bench sweeps the sink-to-air convection resistance
(cheaper package = higher resistance) and reports, per package: whether
the unmanaged suite violates at all (does the package even *need* DTM),
whether Hyb still eliminates violations, and what Hyb's slowdown costs.
The sweep exposes both ends: an expensive package makes DTM unnecessary,
and too cheap a package exceeds DTM's authority.
"""

from _helpers import bench_instructions, save_table

from repro.analysis import render_table
from repro.core.metrics import mean_slowdown
from repro.dtm import HybPolicy, NoDtmPolicy
from repro.sim import SimulationEngine
from repro.thermal import ThermalPackage
from repro.workloads import build_spec_suite

RESISTANCES = (0.80, 0.90, 1.00, 1.10)
SETTLE = 2.0e-3


def _run() -> str:
    instructions = bench_instructions()
    rows = []
    for resistance in RESISTANCES:
        package = ThermalPackage(convection_resistance=resistance)
        base_viol = hyb_viol = 0
        slowdowns = []
        max_unmanaged = -1e9
        for workload in build_spec_suite():
            engine = SimulationEngine(
                workload, policy=NoDtmPolicy(), package=package
            )
            init = engine.compute_initial_temperatures()
            base = engine.run(
                instructions, initial=init.copy(), settle_time_s=SETTLE
            )
            hyb = SimulationEngine(
                workload, policy=HybPolicy(), package=package
            ).run(instructions, initial=init.copy(), settle_time_s=SETTLE)
            base_viol += base.violations
            hyb_viol += hyb.violations
            slowdowns.append(hyb.elapsed_s / base.elapsed_s)
            max_unmanaged = max(max_unmanaged, base.max_true_temp_c)
        rows.append(
            [
                resistance,
                max_unmanaged,
                base_viol,
                hyb_viol,
                mean_slowdown(slowdowns),
            ]
        )
    return render_table(
        [
            "R_conv (K/W)",
            "unmanaged max (C)",
            "unmanaged viol",
            "Hyb viol",
            "Hyb slowdown",
        ],
        rows,
        title="A8: package-cost sweep (cheaper package = higher R_conv; "
              "DTM converts package cost into bounded slowdown until its "
              "authority runs out)",
    )


def test_a8_package_study(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_table("a8_package_study", table)
