"""Activity profiles: intensity knobs to per-block activity vectors.

Rather than hand-writing eighteen activity numbers per phase, workloads are
described by four intensity knobs -- integer datapath, floating-point
datapath, memory traffic and front-end pressure -- that map onto the
floorplan's blocks with fixed per-block weights reflecting Wattch-style
per-access utilisation (the register file sustains the highest utilisation
of its peak because nearly every instruction reads it through multiple
ports).
"""

from __future__ import annotations

from typing import Dict

from repro.errors import WorkloadError
from repro.floorplan.alpha21364 import ALL_BLOCKS

_BLOCK_WEIGHTS = {
    # block: (knob, weight relative to that knob)
    "Icache": ("frontend", 0.80),
    "Bpred": ("frontend", 0.70),
    "ITB": ("frontend", 0.55),
    "IntMap": ("frontend", 0.75),
    "FPMap": ("fp", 0.55),
    "IntQ": ("int", 0.85),
    "IntReg": ("int", 0.95),
    "IntExec": ("int", 0.80),
    "FPQ": ("fp", 0.70),
    "FPReg": ("fp", 0.78),
    "FPAdd": ("fp", 0.70),
    "FPMul": ("fp", 0.60),
    "LdStQ": ("mem", 0.75),
    "Dcache": ("mem", 0.80),
    "DTB": ("mem", 0.60),
    "L2": ("l2", 1.00),
    "L2_left": ("l2", 1.00),
    "L2_right": ("l2", 1.00),
}


def make_activity_profile(
    int_intensity: float,
    fp_intensity: float,
    mem_intensity: float,
    frontend_intensity: float,
    l2_intensity: float,
) -> Dict[str, float]:
    """Per-block base activities from the five intensity knobs.

    Every knob is in [0, 1]; the result covers every block of the Alpha
    floorplan and is clamped to [0, 1].
    """
    knobs = {
        "int": int_intensity,
        "fp": fp_intensity,
        "mem": mem_intensity,
        "frontend": frontend_intensity,
        "l2": l2_intensity,
    }
    for name, value in knobs.items():
        if not 0.0 <= value <= 1.0:
            raise WorkloadError(f"intensity {name!r} is {value}, outside [0, 1]")
    profile: Dict[str, float] = {}
    for block in ALL_BLOCKS:
        knob, weight = _BLOCK_WEIGHTS[block]
        profile[block] = min(1.0, knobs[knob] * weight)
    return profile
