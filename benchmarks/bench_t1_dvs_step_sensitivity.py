"""In-text table T1: DVS voltage step-count sensitivity.

Paper result: continuous / 10 / 5 / 3 / 2 voltage levels all perform the
same for DTM -- within 0.4 % for DVS-stall and 0.01 % for DVS-ideal --
so binary DVS is all a thermal solution needs.
"""

from _helpers import bench_instructions, save_table

from repro.analysis import render_table
from repro.analysis.experiments import t1_dvs_step_sensitivity
from repro.dtm.dvs import CONTINUOUS_LEVEL_COUNT


def _run() -> str:
    results = t1_dvs_step_sensitivity(instructions=bench_instructions())
    counts = sorted(results["stall"])
    rows = []
    for count in counts:
        label = "continuous" if count == CONTINUOUS_LEVEL_COUNT else str(count)
        rows.append(
            [label, results["stall"][count], results["ideal"][count]]
        )
    spread_stall = max(results["stall"].values()) - min(results["stall"].values())
    spread_ideal = max(results["ideal"].values()) - min(results["ideal"].values())
    table = render_table(
        ["levels", "DVS-stall slowdown", "DVS-ideal slowdown"],
        rows,
        title="T1: DVS step-count sensitivity",
    )
    return (
        f"{table}\n\nspread: stall {spread_stall * 100:.3f}% "
        f"(paper < 0.4%), ideal {spread_ideal * 100:.3f}% (paper < 0.01%)"
    )


def test_t1_dvs_step_sensitivity(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_table("t1_dvs_steps", table)
