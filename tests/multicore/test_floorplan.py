"""Dual-core floorplan."""

import pytest

from repro.errors import FloorplanError
from repro.floorplan import validate_floorplan
from repro.floorplan.alpha21364 import CORE_BLOCKS
from repro.multicore import (
    build_dual_core_floorplan,
    core_block,
    core_of,
    dual_core_power_specs,
)


@pytest.fixture(scope="module")
def floorplan():
    return build_dual_core_floorplan()


def test_tiles_the_die(floorplan):
    validate_floorplan(floorplan)


def test_has_two_full_cores(floorplan):
    for core in (0, 1):
        for base in CORE_BLOCKS:
            assert core_block(base, core) in floorplan


def test_cores_are_disjoint_regions(floorplan):
    # Every core-0 block is strictly left of every core-1 block.
    for base_a in CORE_BLOCKS:
        for base_b in CORE_BLOCKS:
            a = floorplan[core_block(base_a, 0)]
            b = floorplan[core_block(base_b, 1)]
            assert a.right <= b.x + 1e-12


def test_shared_l2_between_cores(floorplan):
    assert "L2_mid" in floorplan
    # The middle bank abuts blocks from both cores.
    neighbours = floorplan.neighbours("L2_mid")
    assert any(n.endswith("#0") for n in neighbours)
    assert any(n.endswith("#1") for n in neighbours)


def test_core_block_name_round_trip():
    name = core_block("IntReg", 1)
    assert name == "IntReg#1"
    assert core_of(name) == 1


def test_core_block_rejects_bad_inputs():
    with pytest.raises(FloorplanError):
        core_block("IntReg", 5)
    with pytest.raises(FloorplanError):
        core_block("L2", 0)
    with pytest.raises(FloorplanError):
        core_of("L2")
    with pytest.raises(FloorplanError):
        core_of("IntReg#7")


def test_power_specs_cover_all_blocks(floorplan):
    specs = dual_core_power_specs()
    assert set(specs) == set(floorplan.block_names)


def test_core_specs_mirror_single_core_budget():
    from repro.power import default_power_specs

    specs = dual_core_power_specs()
    base = default_power_specs()
    for core in (0, 1):
        assert specs[core_block("IntReg", core)].peak_dynamic_w == (
            base["IntReg"].peak_dynamic_w
        )


def test_l2_banks_keep_density():
    specs = dual_core_power_specs()
    floorplan = build_dual_core_floorplan()
    density_big = specs["L2"].peak_dynamic_w / floorplan["L2"].area
    density_mid = specs["L2_mid"].peak_dynamic_w / floorplan["L2_mid"].area
    assert density_mid == pytest.approx(density_big, rel=1e-6)
