"""Coupled performance / power / thermal / DTM simulation.

The engine advances the interval performance model one 10 000-cycle
thermal step at a time, feeds per-block average power into the thermal RC
network (with the step's wall-clock length set by the *current* clock
frequency, so DVS stretches steps), samples the sensor array at 10 kHz,
and applies the policy's commands -- including the 10 us DVS switching
stall or delayed-effect window.
"""

from repro.sim.config import EngineConfig
from repro.sim.contract import EngineEvent, SimEngine, drive
from repro.sim.faults import FaultPlan
from repro.sim.results import RunResult
from repro.sim.warmup import average_block_powers, initial_temperatures
from repro.sim.engine import SimulationEngine
from repro.sim.lockstep import LockstepEngine, run_lockstep
from repro.sim.batch import BatchStats, RunSpec, run_many, run_one
from repro.sim.supervisor import RunFailure, load_journal, spec_digest

__all__ = [
    "BatchStats",
    "EngineConfig",
    "EngineEvent",
    "FaultPlan",
    "LockstepEngine",
    "RunFailure",
    "RunResult",
    "RunSpec",
    "SimEngine",
    "SimulationEngine",
    "drive",
    "run_lockstep",
    "initial_temperatures",
    "average_block_powers",
    "load_journal",
    "run_many",
    "run_one",
    "spec_digest",
]
