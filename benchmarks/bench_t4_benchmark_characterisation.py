"""In-text table T4: unmanaged thermal character of the benchmark suite.

Paper (Section 3): the nine hottest SPEC CPU2000 benchmarks all operate
above the trigger temperature most of the time under the low-cost package,
and the hottest unit is always the integer register file.
"""

from _helpers import bench_instructions, save_table

from repro.analysis import render_table
from repro.analysis.experiments import t4_benchmark_characterisation


def _run() -> str:
    rows = []
    for row in t4_benchmark_characterisation(instructions=bench_instructions()):
        rows.append(
            [
                row.benchmark,
                row.hottest_block,
                row.max_temp_c,
                row.fraction_above_trigger,
                row.mean_power_w,
                row.mean_ipc,
            ]
        )
    return render_table(
        [
            "benchmark",
            "hottest block",
            "max temp (C)",
            "time above trigger",
            "mean power (W)",
            "mean IPC",
        ],
        rows,
        title="T4: no-DTM benchmark characterisation",
    )


def test_t4_characterisation(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_table("t4_characterisation", table)
