"""Plain-text table rendering for benchmark output."""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import ReproError


def _format_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence], title: str = ""
) -> str:
    """Render an aligned ASCII table.

    Floats are printed with four decimals (slowdown factors need the
    precision); everything else via ``str``.
    """
    if not headers:
        raise ReproError("table needs headers")
    formatted: List[List[str]] = [[_format_cell(v) for v in row] for row in rows]
    for row in formatted:
        if len(row) != len(headers):
            raise ReproError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
    widths = [
        max(len(str(header)), *(len(row[i]) for row in formatted))
        if formatted
        else len(str(header))
        for i, header in enumerate(headers)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in formatted:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
