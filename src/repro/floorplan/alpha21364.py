"""The Alpha 21364-like floorplan of the paper's Figure 2.

The chip is a 21264-class out-of-order core in one corner of the die with a
large L2 cache filling the remaining area (the paper replaces the 21364's
multiprocessor router logic with additional cache).  Coordinates follow the
HotSpot ev6 planning-stage floorplan style: a 16 mm x 16 mm die, a 6.2 mm x
6.2 mm core in the upper-middle region, and three L2 banks wrapping it.

Exact published coordinates are not available in the paper, so the block
set, relative sizes, and adjacency structure of Figure 2 are reproduced:
I-cache and D-cache at the bottom of the core, a strip of small FP/predictor
blocks above them, queues and map logic next, and the integer register file
and integer execution units at the top.  The integer register file is a
small, high-activity block, which is what makes it the chip's hotspot.
"""

from __future__ import annotations

from typing import List

from repro.floorplan.block import Block
from repro.floorplan.floorplan import Floorplan
from repro.units import MM

DIE_SIDE = 16.0 * MM
"""Die edge length (metres)."""

CORE_X0 = 4.9 * MM
"""x coordinate of the left edge of the CPU core region."""

CORE_Y0 = 9.8 * MM
"""y coordinate of the bottom edge of the CPU core region."""

L2_BLOCKS = ("L2", "L2_left", "L2_right")
"""Level-2 cache banks surrounding the core."""

FRONTEND_BLOCKS = ("Icache", "Bpred", "ITB", "IntMap", "FPMap")
"""Blocks whose activity tracks the fetch/rename rate."""

CORE_BLOCKS = (
    "Icache",
    "Dcache",
    "Bpred",
    "DTB",
    "FPAdd",
    "FPReg",
    "FPMul",
    "FPMap",
    "IntMap",
    "IntQ",
    "FPQ",
    "LdStQ",
    "ITB",
    "IntReg",
    "IntExec",
)
"""All CPU-core blocks (everything except the L2 banks)."""

ALL_BLOCKS = L2_BLOCKS + CORE_BLOCKS
"""Every block on the die, L2 first, in floorplan order."""

HOTTEST_BLOCK = "IntReg"
"""The integer register file: the hottest unit for every benchmark in the
paper."""

# (name, x, y, width, height) in millimetres.  The rows tile the 6.2 mm-wide
# core exactly; validate_floorplan() checks full die coverage in tests.
_BLOCK_GEOMETRY_MM = (
    # L2 wraps the core: bottom band plus left and right columns.
    ("L2", 0.0, 0.0, 16.0, 9.8),
    ("L2_left", 0.0, 9.8, 4.9, 6.2),
    ("L2_right", 11.1, 9.8, 4.9, 6.2),
    # Bottom of the core: first-level caches.
    ("Icache", 4.9, 9.8, 3.1, 2.6),
    ("Dcache", 8.0, 9.8, 3.1, 2.6),
    # Thin strip of predictor / FP blocks.
    ("Bpred", 4.9, 12.4, 1.1, 0.7),
    ("DTB", 6.0, 12.4, 0.9, 0.7),
    ("FPAdd", 6.9, 12.4, 1.1, 0.7),
    ("FPReg", 8.0, 12.4, 1.0, 0.7),
    ("FPMul", 9.0, 12.4, 1.1, 0.7),
    ("FPMap", 10.1, 12.4, 1.0, 0.7),
    # Queues and map logic.
    ("IntMap", 4.9, 13.1, 1.2, 1.0),
    ("IntQ", 6.1, 13.1, 1.3, 1.0),
    ("FPQ", 7.4, 13.1, 0.9, 1.0),
    ("LdStQ", 8.3, 13.1, 1.4, 1.0),
    ("ITB", 9.7, 13.1, 1.4, 1.0),
    # Top of the core: integer register file and execution units.
    ("IntReg", 4.9, 14.1, 2.2, 1.9),
    ("IntExec", 7.1, 14.1, 4.0, 1.9),
)


def build_alpha21364_floorplan() -> Floorplan:
    """Build the Alpha 21364-like floorplan of Figure 2.

    Returns a fully tiling 16 mm x 16 mm floorplan with the 18 blocks listed
    in :data:`ALL_BLOCKS`.
    """
    blocks: List[Block] = [
        Block(name=name, x=x * MM, y=y * MM, width=w * MM, height=h * MM)
        for name, x, y, w, h in _BLOCK_GEOMETRY_MM
    ]
    return Floorplan(blocks, name="alpha21364")
