"""Synthetic trace generation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.uarch import MicroOp, OpClass, TraceGenerator
from repro.uarch.trace import TraceParameters


def collect(params, n, seed=0):
    gen = TraceGenerator(params, seed=seed)
    return [gen.next_op() for _ in range(n)]


class TestDeterminism:
    def test_same_seed_same_stream(self):
        params = TraceParameters()
        a = collect(params, 500, seed=3)
        b = collect(params, 500, seed=3)
        assert a == b

    def test_different_seeds_differ(self):
        params = TraceParameters()
        a = collect(params, 500, seed=1)
        b = collect(params, 500, seed=2)
        assert a != b


class TestOpMix:
    def test_mix_roughly_matches_weights(self):
        params = TraceParameters()
        ops = collect(params, 20_000)
        branch_fraction = sum(
            1 for op in ops if op.op_class is OpClass.BRANCH
        ) / len(ops)
        assert branch_fraction == pytest.approx(0.15, abs=0.02)

    def test_sequence_numbers_are_consecutive(self):
        ops = collect(TraceParameters(), 100)
        assert [op.seq for op in ops] == list(range(100))

    def test_memory_ops_carry_addresses(self):
        for op in collect(TraceParameters(), 2_000):
            if op.op_class.is_memory:
                assert op.address is not None
                assert 0 <= op.address < TraceParameters().working_set_bytes
            else:
                assert op.address is None


class TestControlFlow:
    def test_pcs_stay_within_code_footprint(self):
        params = TraceParameters(code_footprint_bytes=16 * 1024)
        for op in collect(params, 5_000):
            assert 0 <= op.pc < 16 * 1024

    def test_branches_revisit_sites(self):
        # Loop structure means branch PCs repeat heavily -- that is what
        # makes them predictable.
        ops = collect(TraceParameters(), 30_000)
        branch_pcs = [op.pc for op in ops if op.op_class is OpClass.BRANCH]
        visits = len(branch_pcs) / max(1, len(set(branch_pcs)))
        assert visits > 3.0

    def test_only_branches_may_be_taken(self):
        for op in collect(TraceParameters(), 2_000):
            if op.taken:
                assert op.op_class is OpClass.BRANCH

    def test_predictability_controls_taken_bias(self):
        predictable = TraceParameters(branch_predictability=0.99)
        coin_flip = TraceParameters(branch_predictability=0.5)

        def inherent_floor(params):
            ops = collect(params, 60_000, seed=5)
            per_pc = {}
            for op in ops:
                if op.op_class is OpClass.BRANCH:
                    stats = per_pc.setdefault(op.pc, [0, 0])
                    stats[op.taken] += 1
            weighted = 0.0
            total = 0
            for not_taken, taken in per_pc.values():
                n = not_taken + taken
                weighted += n * min(not_taken, taken) / n
                total += n
            return weighted / total

        assert inherent_floor(predictable) < 0.05
        assert inherent_floor(coin_flip) > 0.3


class TestDependencies:
    def test_source_distances_positive_and_bounded(self):
        for op in collect(TraceParameters(), 5_000):
            for distance in op.src_distances:
                assert 1 <= distance <= 512

    def test_mean_distance_tracks_parameter(self):
        short = TraceParameters(dep_distance_mean=2.0)
        long = TraceParameters(dep_distance_mean=12.0)

        def mean_distance(params):
            distances = [
                d
                for op in collect(params, 10_000)
                for d in op.src_distances
            ]
            return sum(distances) / len(distances)

        assert mean_distance(short) < mean_distance(long)
        assert mean_distance(short) == pytest.approx(2.0, rel=0.25)


class TestAddressStream:
    def test_sequential_fraction_controls_locality(self):
        streaming = TraceParameters(sequential_fraction=1.0)
        ops = collect(streaming, 5_000)
        addresses = [op.address for op in ops if op.op_class.is_memory]
        deltas = [b - a for a, b in zip(addresses, addresses[1:])]
        # Pure streaming: nearly all deltas are the +8 stride (modulo
        # wrap-around).
        strides = sum(1 for d in deltas if d == 8)
        assert strides / len(deltas) > 0.95

    def test_random_fraction_spreads_over_working_set(self):
        params = TraceParameters(sequential_fraction=0.0,
                                 working_set_bytes=1 << 20)
        ops = collect(params, 5_000)
        addresses = [op.address for op in ops if op.op_class.is_memory]
        assert max(addresses) > (1 << 19)  # reaches the upper half


class TestValidation:
    def test_rejects_empty_mix(self):
        with pytest.raises(WorkloadError):
            TraceParameters(op_mix={})

    def test_rejects_negative_weights(self):
        with pytest.raises(WorkloadError):
            TraceParameters(op_mix={OpClass.IALU: -1.0})

    def test_rejects_bad_dep_mean(self):
        with pytest.raises(WorkloadError):
            TraceParameters(dep_distance_mean=0.5)

    def test_rejects_bad_sequential_fraction(self):
        with pytest.raises(WorkloadError):
            TraceParameters(sequential_fraction=1.5)

    def test_rejects_loop_bigger_than_footprint(self):
        with pytest.raises(WorkloadError):
            TraceParameters(
                code_footprint_bytes=4096, loop_size_bytes=8192
            )

    def test_rejects_bad_predictability(self):
        with pytest.raises(WorkloadError):
            TraceParameters(branch_predictability=0.4)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 1000))
def test_property_stream_is_well_formed(seed):
    gen = TraceGenerator(TraceParameters(), seed=seed)
    for expected_seq in range(200):
        op = gen.next_op()
        assert isinstance(op, MicroOp)
        assert op.seq == expected_seq
