"""The per-block sensor array and its 10 kHz sampler."""

from __future__ import annotations

import logging
from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from repro.errors import SensorFaultError, SimulationError
from repro.floorplan.floorplan import Floorplan
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.sensors.faults import SensorFault
from repro.sensors.sensor import SensorParameters, ThermalSensor
from repro.units import KHZ

_LOGGER = logging.getLogger("repro.sensors")

NOISE_CHUNK = 64
"""Gaussian noise values pre-drawn per sensor on the *first* refill of
the vectorized sampling path (see :meth:`SensorArray.sample_vector`).
Each refill doubles the chunk up to :data:`NOISE_CHUNK_MAX`, so short
runs do not over-draw while long runs amortise the refill overhead."""

NOISE_CHUNK_MAX = 1024
"""Upper bound on the geometric noise-chunk growth."""


class SensorArray:
    """One :class:`ThermalSensor` in the middle of each floorplan block.

    ``sampling_rate_hz`` limits how often the DTM controller can obtain
    fresh readings (10 kHz in the paper -- "aggressive but reasonable").
    The array tracks the time of the last sample; :meth:`due` tells the
    simulation engine when the next sample may be taken.

    ``faults`` attaches one :class:`~repro.sensors.faults.SensorFault`
    per named block (stuck-at, dropout, extra offset; see
    :mod:`repro.sensors.faults`).  Dropped-out sensors are skipped when
    sampling -- the controller keeps operating on the survivors -- but
    an array with *no* live sensor raises
    :class:`~repro.errors.SensorFaultError` instead of returning an
    empty (and silently violation-free) sample.
    """

    def __init__(
        self,
        floorplan: Floorplan,
        parameters: Optional[SensorParameters] = None,
        sampling_rate_hz: float = 10.0 * KHZ,
        seed: int = 0,
        faults: Optional[Sequence[SensorFault]] = None,
    ):
        if sampling_rate_hz <= 0.0:
            raise SimulationError("sampling rate must be > 0")
        self._params = parameters if parameters is not None else SensorParameters()
        self._period_s = 1.0 / sampling_rate_hz
        by_block: Dict[str, SensorFault] = {}
        for fault in faults or ():
            if fault.block not in floorplan.block_names:
                raise SimulationError(
                    f"sensor fault names unknown block {fault.block!r}"
                )
            if fault.block in by_block:
                raise SimulationError(
                    f"block {fault.block!r} has more than one sensor fault"
                )
            by_block[fault.block] = fault
        if by_block:
            # Fault-plan application used to be silent; a degraded array
            # changes every downstream statistic, so say so.
            _LOGGER.warning(
                "sensor array built with %d faulted sensor(s): %s",
                len(by_block),
                ", ".join(sorted(by_block)),
            )
            obs_metrics.inc("sensors.faults_attached", len(by_block))
            obs_events.emit(
                "sensors.faults_attached",
                count=len(by_block),
                blocks=",".join(sorted(by_block)),
            )
        self._sensors: Dict[str, ThermalSensor] = {
            name: ThermalSensor(
                self._params,
                seed=seed * 1009 + index,
                fault=by_block.get(name),
            )
            for index, name in enumerate(floorplan.block_names)
        }
        self._last_sample_s = -self._period_s  # first sample due at t = 0
        self._names = tuple(self._sensors)
        self._has_faults = bool(by_block)
        # Vectorized-path state, built lazily on first sample_vector():
        # per-sensor fixed offsets and a (n, NOISE_CHUNK) buffer of
        # pre-drawn Gaussian noise.  Each column refill draws from the
        # sensors' own RNG streams in block order, so the per-sensor
        # noise sequence is bit-identical to on-demand scalar reads.
        self._offsets: Optional[np.ndarray] = None
        self._noise_buf: Optional[np.ndarray] = None
        self._noise_cursor = 0
        self._noise_chunk = NOISE_CHUNK

    def reset(self) -> None:
        """Rewind the array to construction state.

        Re-seeds every sensor's RNG stream and discards the vectorized
        path's pre-drawn noise, so a reset array replays bit-identical
        readings on a repeated run (the engine contract's
        reset-reentrancy guarantee).
        """
        for sensor in self._sensors.values():
            sensor.reset()
        self._last_sample_s = -self._period_s
        self._offsets = None
        self._noise_buf = None
        self._noise_cursor = 0
        self._noise_chunk = NOISE_CHUNK

    @property
    def parameters(self) -> SensorParameters:
        """Shared sensor error model."""
        return self._params

    @property
    def sampling_period_s(self) -> float:
        """Time between samples in seconds."""
        return self._period_s

    @property
    def block_names(self) -> tuple:
        """Blocks covered by the array."""
        return self._names

    @property
    def vector_eligible(self) -> bool:
        """True when :meth:`sample_vector` reproduces :meth:`sample`
        exactly: no injected sensor faults (stuck/offset/dropout
        handling stays on the scalar path)."""
        return not self._has_faults

    def offset_of(self, block: str) -> float:
        """Fixed offset of one block's sensor."""
        try:
            return self._sensors[block].offset_c
        except KeyError:
            raise SimulationError(f"no sensor on block {block!r}") from None

    @property
    def next_due_s(self) -> float:
        """Earliest simulation time at which the next sample is due.

        The engine's constant-power fast-forward clips its jumps to this
        boundary so the policy sees exactly the sample times (and the
        sensors draw exactly the noise sequence) of explicit stepping.
        """
        return self._last_sample_s + self._period_s

    def due(self, time_s: float) -> bool:
        """True when a new sample may be taken at simulation time
        ``time_s`` (at least one sampling period since the last)."""
        return time_s - self._last_sample_s >= self._period_s - 1e-12

    def sample(
        self, true_temps_c: Mapping[str, float], time_s: float
    ) -> Dict[str, float]:
        """Read every sensor once, marking ``time_s`` as the sample time.

        The engine should call this only when :meth:`due` is true; calling
        early raises, which catches controllers that assume a faster
        sampling rate than the hardware provides.
        """
        if not self.due(time_s):
            raise SimulationError(
                f"sensor sample at t={time_s * 1e6:.1f} us violates the "
                f"{self._period_s * 1e6:.0f} us sampling period"
            )
        if self._noise_buf is not None:
            # sample_vector() pre-draws noise, so a scalar read here
            # would consume values out of order and silently diverge
            # from the pure-scalar noise sequence.
            raise SimulationError(
                "cannot mix sample() and sample_vector() on one array: "
                "the vectorized path has pre-drawn noise in flight"
            )
        self._last_sample_s = time_s
        readings: Dict[str, float] = {}
        for name, sensor in self._sensors.items():
            if not sensor.alive:
                continue
            if name not in true_temps_c:
                raise SimulationError(f"no true temperature for block {name!r}")
            readings[name] = sensor.read(true_temps_c[name])
        if not readings:
            _LOGGER.error(
                "every sensor in the array has dropped out at t=%.6gs",
                time_s,
            )
            obs_events.emit("sensors.all_dropped_out", time_s=time_s)
            raise SensorFaultError(
                "every sensor in the array has dropped out; the DTM "
                "controller has no thermal observability"
            )
        return readings

    def _refill_noise(self) -> np.ndarray:
        """Draw the next chunk of Gaussians from every sensor's RNG.

        Pre-drawing in chunks amortises the per-call Python overhead of
        the scalar path while consuming exactly the same values from
        exactly the same per-sensor streams: column ``j`` of the buffer
        holds each sensor's ``j``-th future draw.  The chunk doubles on
        every refill (64 up to 1024) so the draws wasted at the end of a
        run stay bounded relative to the draws consumed.
        """
        chunk = self._noise_chunk
        self._noise_buf = buf = np.empty((len(self._names), chunk))
        self._noise_chunk = min(chunk * 2, NOISE_CHUNK_MAX)
        sigma = self._params.noise_sigma_c
        for i, sensor in enumerate(self._sensors.values()):
            gauss = sensor._rng.gauss
            buf[i, :] = [gauss(0.0, sigma) for _ in range(chunk)]
        self._noise_cursor = 0
        return buf

    def sample_vector(
        self, true_temps_c: np.ndarray, time_s: float
    ) -> Dict[str, float]:
        """Read every sensor once from a temperature *vector*.

        The fast-path form of :meth:`sample` for the simulation engine:
        ``true_temps_c`` holds the block temperatures in
        :attr:`block_names` order, and the whole array is read with a
        handful of NumPy operations.  Readings are bit-identical to the
        scalar path -- same offsets, same per-sensor noise streams
        (pre-drawn in chunks), same round-half-even quantisation --
        which the equivalence tests assert.  Only valid on a fault-free
        array (:attr:`vector_eligible`); faulted arrays keep the scalar
        path's per-sensor handling.
        """
        if self._has_faults:
            raise SimulationError(
                "sample_vector is only valid on a fault-free array; "
                "use sample() so per-sensor faults apply"
            )
        if not self.due(time_s):
            raise SimulationError(
                f"sensor sample at t={time_s * 1e6:.1f} us violates the "
                f"{self._period_s * 1e6:.0f} us sampling period"
            )
        self._last_sample_s = time_s
        if self._offsets is None:
            self._offsets = np.array(
                [sensor._offset for sensor in self._sensors.values()]
            )
        values = true_temps_c + self._offsets
        if self._params.noise_sigma_c > 0.0:
            buf = self._noise_buf
            if buf is None or self._noise_cursor >= buf.shape[1]:
                buf = self._refill_noise()
            values += buf[:, self._noise_cursor]
            self._noise_cursor += 1
        step = self._params.quantisation_c
        if step > 0.0:
            values /= step
            np.round(values, out=values)
            values *= step
        return dict(zip(self._names, values.tolist()))

    def sample_hottest(self, true_temps_c: np.ndarray, time_s: float) -> float:
        """Read every sensor once and return only the hottest reading.

        The fused-sensing form of :meth:`sample_vector` for policies
        that consume nothing but the array maximum (the paper's
        trigger/emergency comparisons): same offsets, same pre-drawn
        per-sensor noise streams, same round-half-even quantisation --
        the per-block values are computed identically and the maximum of
        identical values is order-independent, so the returned float is
        bit-identical to ``max(sample_vector(...).values())`` -- but no
        per-sample dict is built.  Only valid on a fault-free array
        (:attr:`vector_eligible`).
        """
        if self._has_faults:
            raise SimulationError(
                "sample_hottest is only valid on a fault-free array; "
                "use sample() so per-sensor faults apply"
            )
        if not self.due(time_s):
            raise SimulationError(
                f"sensor sample at t={time_s * 1e6:.1f} us violates the "
                f"{self._period_s * 1e6:.0f} us sampling period"
            )
        self._last_sample_s = time_s
        if self._offsets is None:
            self._offsets = np.array(
                [sensor._offset for sensor in self._sensors.values()]
            )
        values = true_temps_c + self._offsets
        if self._params.noise_sigma_c > 0.0:
            buf = self._noise_buf
            if buf is None or self._noise_cursor >= buf.shape[1]:
                buf = self._refill_noise()
            values += buf[:, self._noise_cursor]
            self._noise_cursor += 1
        step = self._params.quantisation_c
        if step > 0.0:
            values /= step
            np.round(values, out=values)
            values *= step
        return float(values.max())

    @staticmethod
    def max_reading(readings: Mapping[str, float]) -> float:
        """The hottest observed temperature across the array."""
        if not readings:
            raise SimulationError("empty sensor readings")
        return max(readings.values())
