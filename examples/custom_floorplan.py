"""Using the thermal substrate standalone: a custom floorplan and package.

Builds a small four-block floorplan, compares steady-state hotspots under
the paper's low-cost package and a premium one, and integrates a transient
power step -- the planning-stage workflow HotSpot was designed for.

Run:  python examples/custom_floorplan.py
"""

from repro import HotSpotModel, ThermalPackage
from repro.floorplan import Block, Floorplan, validate_floorplan
from repro.units import MM


def build_floorplan() -> Floorplan:
    # A 10 mm x 10 mm die: two hot cores on top of a shared cache.
    blocks = [
        Block("core0", x=0.0, y=5.0 * MM, width=5.0 * MM, height=5.0 * MM),
        Block("core1", x=5.0 * MM, y=5.0 * MM, width=5.0 * MM, height=5.0 * MM),
        Block("cache", x=0.0, y=0.0, width=10.0 * MM, height=5.0 * MM),
        ]
    floorplan = Floorplan(blocks, name="dual-core")
    validate_floorplan(floorplan)
    return floorplan


def main() -> None:
    floorplan = build_floorplan()
    powers = {"core0": 18.0, "core1": 4.0, "cache": 6.0}  # watts

    print("steady state under two packages "
          "(core0 busy, core1 mostly idle):")
    for label, resistance in (("low-cost (1.0 K/W)", 1.0),
                              ("premium (0.4 K/W)", 0.4)):
        model = HotSpotModel(
            floorplan, ThermalPackage(convection_resistance=resistance)
        )
        temps = model.steady_state(powers)
        print(f"  {label:20s} core0={temps['core0']:6.2f} C  "
              f"core1={temps['core1']:6.2f} C  cache={temps['cache']:6.2f} C")

    # Transient: start from the idle steady state, slam core0 to full
    # power and watch the hotspot rise over the first millisecond.
    model = HotSpotModel(floorplan)
    idle = model.steady_state({"core0": 4.0, "core1": 4.0, "cache": 4.0})
    solver = model.make_transient(idle)
    network = model.network
    step_power = network.power_vector(powers)
    print("\ntransient response to a power step on core0:")
    dt = 20e-6
    for step in range(1, 51):
        temps = solver.step(step_power, dt)
        if step % 10 == 0:
            mapping = network.temperatures_as_mapping(temps)
            print(f"  t={step * dt * 1e3:5.2f} ms  "
                  f"core0={mapping['core0']:6.2f} C  "
                  f"(idle was {idle['core0']:.2f} C)")


if __name__ == "__main__":
    main()
