"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's figures or in-text tables at
full scale, prints the table, and writes it to ``benchmarks/results/``.

Environment knobs:

* ``REPRO_BENCH_INSTRUCTIONS`` -- per-benchmark instruction budget
  (default 20 000 000, about 7 ms of 3 GHz execution per run).
"""

from __future__ import annotations

import os
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def bench_instructions() -> int:
    """Per-run instruction budget for the harness."""
    return int(os.environ.get("REPRO_BENCH_INSTRUCTIONS", 20_000_000))


def save_table(name: str, text: str) -> None:
    """Print a rendered table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print()
    print(text)
    print(f"[saved to {path}]")
