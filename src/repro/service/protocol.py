"""Wire protocol of the sweep service: length-prefixed JSON frames.

One frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON encoding one object.  The framing is deliberately
dumb: no negotiation, no compression, no partial frames -- a reader
either gets a whole well-formed object or a typed error telling it
exactly what went wrong, and a *server* reading a bad frame can fail
one connection without poisoning its event loop or any other client.

Requests are objects with an ``op`` field (``submit`` / ``status`` /
``drain`` / ``ping``); replies echo ``op`` and carry ``ok``.  A submit
is answered by one acceptance frame, then one ``result`` frame per
spec as it resolves (cache hits immediately, executed runs on
completion) -- see :mod:`repro.service.server` for the full grammar
and docs/SERVICE.md for the failure matrix.

Spec wire format
----------------
The service accepts the declarative subset of
:class:`~repro.sim.batch.RunSpec`: named benchmark, named policy, and
scalar knobs.  Callable policy factories and pinned initial-temperature
vectors are process-local constructs and are rejected at the boundary
(:class:`SpecError`), never half-honoured.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Dict, Optional

from repro.errors import SimulationError

MAX_FRAME_BYTES = 1 << 20
"""Default ceiling on one frame's payload (1 MiB).  A sweep submission
of several thousand specs fits comfortably; anything bigger is shed at
the framing layer before it can balloon server memory."""

_HEADER = struct.Struct(">I")

PROTOCOL_VERSION = 1
"""Bumped on incompatible frame-grammar changes."""


class ProtocolError(SimulationError):
    """The peer violated the frame grammar (bad length, bad JSON, bad
    payload type).  Scoped to one connection."""


class FrameTooLargeError(ProtocolError):
    """A frame announced a payload beyond the agreed maximum."""


class SpecError(SimulationError):
    """A submitted spec failed validation at the service boundary."""


def encode_frame(obj: Dict[str, object]) -> bytes:
    """One wire frame (header + JSON payload) for ``obj``."""
    payload = json.dumps(obj, sort_keys=True).encode("utf-8")
    return _HEADER.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> Dict[str, object]:
    """Parse and type-check one frame payload."""
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"frame payload is not JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got {type(obj).__name__}"
        )
    return obj


# --- asyncio side (server) --------------------------------------------------


async def read_frame(
    reader: asyncio.StreamReader,
    max_bytes: int = MAX_FRAME_BYTES,
) -> Optional[Dict[str, object]]:
    """Read one frame; ``None`` on clean EOF before a header.

    Raises :class:`FrameTooLargeError` for an oversized announcement
    (after draining the announced bytes, so the caller *may* keep the
    connection if it chooses) and :class:`ProtocolError` for a torn
    header/payload or non-object JSON.
    """
    header = await reader.read(_HEADER.size)
    if not header:
        return None
    while len(header) < _HEADER.size:
        more = await reader.read(_HEADER.size - len(header))
        if not more:
            raise ProtocolError("connection closed inside a frame header")
        header += more
    (length,) = _HEADER.unpack(header)
    if length > max_bytes:
        # Drain without buffering so the error reply stays in sync on a
        # connection the server decides to keep.
        remaining = length
        while remaining > 0:
            chunk = await reader.read(min(65536, remaining))
            if not chunk:
                break
            remaining -= len(chunk)
        raise FrameTooLargeError(
            f"frame of {length} bytes exceeds the {max_bytes} byte limit"
        )
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError("connection closed inside a frame payload") from None
    return decode_payload(payload)


async def write_frame(
    writer: asyncio.StreamWriter, obj: Dict[str, object]
) -> None:
    """Send one frame and drain the transport."""
    writer.write(encode_frame(obj))
    await writer.drain()


# --- blocking side (client) -------------------------------------------------


def send_frame(sock: socket.socket, obj: Dict[str, object]) -> None:
    """Send one frame on a blocking socket."""
    sock.sendall(encode_frame(obj))


def recv_frame(
    sock: socket.socket, max_bytes: int = MAX_FRAME_BYTES
) -> Optional[Dict[str, object]]:
    """Receive one frame on a blocking socket; ``None`` on clean EOF."""

    def read_exact(n: int) -> bytes:
        chunks = []
        remaining = n
        while remaining > 0:
            chunk = sock.recv(min(65536, remaining))
            if not chunk:
                raise ProtocolError("connection closed inside a frame")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    first = sock.recv(_HEADER.size)
    if not first:
        return None
    header = first
    if len(header) < _HEADER.size:
        header += read_exact(_HEADER.size - len(header))
    (length,) = _HEADER.unpack(header)
    if length > max_bytes:
        raise FrameTooLargeError(
            f"frame of {length} bytes exceeds the {max_bytes} byte limit"
        )
    return decode_payload(read_exact(length))


# --- spec wire format -------------------------------------------------------

_SPEC_FIELDS = {
    "benchmark": str,
    "policy": str,
    "instructions": int,
    "settle_time_s": (int, float),
    "dvs_mode": str,
    "seed": int,
}

_SPEC_DEFAULTS = {
    "policy": "none",
    "settle_time_s": 0.0,
    "dvs_mode": "stall",
    "seed": 0,
}


def spec_to_wire(spec) -> Dict[str, object]:
    """The wire mapping for a declarative :class:`RunSpec`.

    Raises :class:`SpecError` for specs the service cannot represent
    (callable policies, workload objects, pinned initial vectors,
    engine-config overrides).
    """
    from repro.sim.batch import RunSpec

    if not isinstance(spec, RunSpec):
        raise SpecError(
            f"the service accepts single-core RunSpec only, got "
            f"{type(spec).__name__}"
        )
    if not isinstance(spec.workload, str):
        raise SpecError("service specs must name their benchmark")
    if not isinstance(spec.policy, str):
        raise SpecError("service specs must name their policy")
    if spec.initial is not None:
        raise SpecError("pinned initial vectors are not wire-portable")
    if spec.engine_config is not None:
        raise SpecError(
            "engine-config overrides are not wire-portable; use dvs_mode"
        )
    return {
        "benchmark": spec.workload,
        "policy": spec.policy,
        "instructions": int(spec.instructions),
        "settle_time_s": float(spec.settle_time_s),
        "dvs_mode": spec.dvs_mode,
        "seed": int(spec.seed),
    }


def spec_from_wire(wire: object):
    """Validate one wire mapping and build the :class:`RunSpec`.

    Every failure mode is a :class:`SpecError` naming the offending
    field -- a malformed spec is answered, never executed and never
    allowed to take the server down.
    """
    from repro.core.policies import POLICY_NAMES
    from repro.sim.batch import DEFAULT_INSTRUCTIONS, RunSpec
    from repro.workloads.spec import SPEC_BENCHMARK_NAMES

    if not isinstance(wire, dict):
        raise SpecError(f"spec must be an object, got {type(wire).__name__}")
    unknown = set(wire) - set(_SPEC_FIELDS)
    if unknown:
        raise SpecError(f"unknown spec fields: {sorted(unknown)}")
    if "benchmark" not in wire:
        raise SpecError("spec is missing 'benchmark'")
    merged = {**_SPEC_DEFAULTS,
              "instructions": DEFAULT_INSTRUCTIONS, **wire}
    for field, types in _SPEC_FIELDS.items():
        value = merged[field]
        if isinstance(value, bool) or not isinstance(value, types):
            raise SpecError(
                f"spec field {field!r} has wrong type "
                f"{type(value).__name__}"
            )
    if merged["benchmark"] not in SPEC_BENCHMARK_NAMES:
        raise SpecError(f"unknown benchmark {merged['benchmark']!r}")
    if merged["policy"] not in POLICY_NAMES:
        raise SpecError(f"unknown policy {merged['policy']!r}")
    if merged["dvs_mode"] not in ("stall", "ideal"):
        raise SpecError(f"unknown dvs_mode {merged['dvs_mode']!r}")
    if merged["instructions"] <= 0:
        raise SpecError("instructions must be > 0")
    if merged["settle_time_s"] < 0.0:
        raise SpecError("settle_time_s must be >= 0")
    return RunSpec(
        workload=merged["benchmark"],
        policy=merged["policy"],
        instructions=int(merged["instructions"]),
        settle_time_s=float(merged["settle_time_s"]),
        dvs_mode=merged["dvs_mode"],
        seed=int(merged["seed"]),
    )
