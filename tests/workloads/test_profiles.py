"""Activity profiles."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.floorplan import ALL_BLOCKS
from repro.workloads import make_activity_profile


def test_covers_every_block():
    profile = make_activity_profile(0.5, 0.5, 0.5, 0.5, 0.5)
    assert set(profile) == set(ALL_BLOCKS)


def test_intreg_tracks_integer_knob_with_highest_weight():
    profile = make_activity_profile(1.0, 0.0, 0.0, 0.0, 0.0)
    assert profile["IntReg"] == pytest.approx(0.95)
    assert profile["IntReg"] > profile["IntExec"]
    assert profile["FPAdd"] == 0.0


def test_fp_knob_drives_fp_blocks():
    profile = make_activity_profile(0.0, 1.0, 0.0, 0.0, 0.0)
    assert profile["FPReg"] > 0.5
    assert profile["IntReg"] == 0.0


def test_l2_banks_share_one_knob():
    profile = make_activity_profile(0.0, 0.0, 0.0, 0.0, 0.4)
    assert profile["L2"] == profile["L2_left"] == profile["L2_right"] == 0.4


def test_rejects_out_of_range_knobs():
    with pytest.raises(WorkloadError):
        make_activity_profile(1.5, 0.0, 0.0, 0.0, 0.0)
    with pytest.raises(WorkloadError):
        make_activity_profile(0.0, -0.1, 0.0, 0.0, 0.0)


@given(
    knobs=st.tuples(*[st.floats(0.0, 1.0)] * 5)
)
def test_property_profile_in_unit_interval(knobs):
    profile = make_activity_profile(*knobs)
    for value in profile.values():
        assert 0.0 <= value <= 1.0
