"""Dual-core engine and core hopping."""

import pytest

from repro.dtm import HybPolicy, ThermalThresholds
from repro.errors import DtmConfigError, SimulationError
from repro.multicore import CoreHopper, HoppingConfig, MultiCoreEngine
from repro.workloads import build_benchmark

DURATION = 2.0e-3
SETTLE = 1.0e-3


@pytest.fixture(scope="module")
def hot_and_mild():
    return [build_benchmark("crafty"), build_benchmark("mesa")]


@pytest.fixture(scope="module")
def baseline(hot_and_mild):
    engine = MultiCoreEngine(hot_and_mild)
    init = engine.compute_initial_temperatures()
    return init, engine.run(DURATION, initial=init.copy(), settle_time_s=SETTLE)


class TestBaseline:
    def test_both_cores_commit_work(self, baseline):
        _, result = baseline
        for core in result.cores:
            assert core.instructions > 0

    def test_hot_core_is_the_hotspot(self, baseline):
        _, result = baseline
        assert result.hottest_block.endswith("#0")  # crafty on core 0

    def test_throughput_is_chip_wide(self, baseline):
        _, result = baseline
        assert result.total_instructions == pytest.approx(
            sum(c.instructions for c in result.cores)
        )
        assert result.throughput_ips > 5e9  # two 3 GHz cores

    def test_thermal_coupling_between_cores(self, hot_and_mild):
        # Running crafty next to mesa heats mesa's core versus running
        # two mesas: the neighbour's heat arrives through the shared die.
        mesa = build_benchmark("mesa")
        crafty = build_benchmark("crafty")
        engine_hot = MultiCoreEngine([crafty, mesa])
        engine_cool = MultiCoreEngine([mesa, mesa])
        hot_init = engine_hot.compute_initial_temperatures()
        cool_init = engine_cool.compute_initial_temperatures()
        net = engine_hot.hotspot.network
        hot_map = net.temperatures_as_mapping(hot_init)
        cool_map = net.temperatures_as_mapping(cool_init)
        assert hot_map["IntReg#1"] > cool_map["IntReg#1"] + 0.5


class TestDtm:
    def test_per_core_hyb_cools_the_chip(self, hot_and_mild, baseline):
        init, base = baseline
        managed = MultiCoreEngine(
            hot_and_mild, policies=[HybPolicy(), HybPolicy()]
        ).run(DURATION, initial=init.copy(), settle_time_s=SETTLE)
        assert managed.max_true_temp_c <= base.max_true_temp_c + 1e-9
        assert managed.throughput_ips <= base.throughput_ips * (1 + 1e-9)

    def test_core_hopping_swaps_and_cools(self, hot_and_mild, baseline):
        init, base = baseline
        hopped = MultiCoreEngine(hot_and_mild, hopper=CoreHopper()).run(
            DURATION, initial=init.copy(), settle_time_s=SETTLE
        )
        assert hopped.swaps > 0
        assert hopped.max_true_temp_c < base.max_true_temp_c

    def test_hopping_costs_little_throughput(self, hot_and_mild, baseline):
        init, base = baseline
        hopped = MultiCoreEngine(hot_and_mild, hopper=CoreHopper()).run(
            DURATION, initial=init.copy(), settle_time_s=SETTLE
        )
        assert hopped.throughput_ips > 0.95 * base.throughput_ips


class TestHopper:
    def readings(self, hot0, hot1):
        return {"IntReg#0": hot0, "IntReg#1": hot1}

    def test_swaps_when_hot_and_neighbour_cool(self):
        hopper = CoreHopper()
        trigger = ThermalThresholds().trigger_c
        assert hopper.update(
            self.readings(trigger + 1.0, trigger - 3.0), [0, 1], 0.0, 1e-4
        )
        assert hopper.swaps == 1

    def test_no_swap_when_cool(self):
        hopper = CoreHopper()
        assert not hopper.update(self.readings(75.0, 74.0), [0, 1], 0.0, 1e-4)

    def test_no_swap_when_neighbour_equally_hot(self):
        hopper = CoreHopper()
        trigger = ThermalThresholds().trigger_c
        assert not hopper.update(
            self.readings(trigger + 1.0, trigger + 0.8), [0, 1], 0.0, 1e-4
        )

    def test_refractory_period(self):
        hopper = CoreHopper(HoppingConfig(min_interval_s=1e-3))
        trigger = ThermalThresholds().trigger_c
        assert hopper.update(
            self.readings(trigger + 1.0, 70.0), [0, 1], 0.0, 1e-4
        )
        assert not hopper.update(
            self.readings(trigger + 1.0, 70.0), [1, 0], 0.5e-3, 1e-4
        )
        assert hopper.update(
            self.readings(trigger + 1.0, 70.0), [1, 0], 1.5e-3, 1e-4
        )

    def test_missing_core_readings_rejected(self):
        hopper = CoreHopper()
        with pytest.raises(DtmConfigError):
            hopper.update({"IntReg#0": 80.0}, [0, 1], 0.0, 1e-4)

    def test_reset(self):
        hopper = CoreHopper()
        trigger = ThermalThresholds().trigger_c
        hopper.update(self.readings(trigger + 1.0, 70.0), [0, 1], 0.0, 1e-4)
        hopper.reset()
        assert hopper.swaps == 0

    def test_config_validation(self):
        with pytest.raises(DtmConfigError):
            HoppingConfig(neighbour_margin_c=-1.0)
        with pytest.raises(DtmConfigError):
            HoppingConfig(min_interval_s=-1.0)


class TestValidation:
    def test_needs_two_workloads(self):
        with pytest.raises(SimulationError):
            MultiCoreEngine([build_benchmark("mesa")])

    def test_needs_one_policy_per_core(self, hot_and_mild):
        with pytest.raises(SimulationError):
            MultiCoreEngine(hot_and_mild, policies=[HybPolicy()])

    def test_rejects_zero_duration(self, hot_and_mild):
        engine = MultiCoreEngine(hot_and_mild)
        with pytest.raises(SimulationError):
            engine.run(0.0)
