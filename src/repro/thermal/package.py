"""Thermal package description: die, interface material, spreader, sink.

The defaults reproduce the paper's setup: a 0.5 mm die, the copper heat
spreader and heat sink of the HotSpot ISCA 2003 configuration, and an
equivalent sink-to-air convection resistance of 1.0 K/W, "corresponding to a
low-cost package" chosen to push the hot SPEC benchmarks into thermal
stress.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ThermalModelError
from repro.thermal.materials import COPPER, SILICON, Material
from repro.units import MM


@dataclass(frozen=True)
class ThermalPackage:
    """Everything between the active silicon and the ambient air.

    Parameters
    ----------
    die_thickness:
        Silicon die thickness in metres (paper: 0.5 mm).
    die_material:
        Material of the die (silicon).
    interface_resistance_per_area:
        Specific thermal resistance of the die/spreader interface material,
        in m^2 K / W (thickness over conductivity of the TIM layer).
    spreader_side, spreader_thickness:
        Square copper heat spreader geometry in metres.
    sink_side, sink_thickness:
        Square copper heat-sink base geometry in metres.
    package_material:
        Material of spreader and sink (copper).
    convection_resistance:
        Equivalent sink-to-air resistance in K/W (paper: 1.0 K/W).
    ambient_c:
        Air temperature inside the case, degrees Celsius.
    die_capacitance_factor:
        Lumping correction applied to per-block die capacitances; compact RC
        models under-predict transient speed with the full slab capacitance,
        so a factor < 1 is used, as in HotSpot.
    """

    die_thickness: float = 0.5 * MM
    die_material: Material = SILICON
    interface_resistance_per_area: float = 5.0e-6  # 20 um TIM at 4 W/(m K)
    spreader_side: float = 30.0 * MM
    spreader_thickness: float = 1.0 * MM
    sink_side: float = 60.0 * MM
    sink_thickness: float = 6.9 * MM
    package_material: Material = COPPER
    convection_resistance: float = 1.0
    ambient_c: float = 45.0
    die_capacitance_factor: float = 0.5

    def __post_init__(self) -> None:
        positives = {
            "die_thickness": self.die_thickness,
            "interface_resistance_per_area": self.interface_resistance_per_area,
            "spreader_side": self.spreader_side,
            "spreader_thickness": self.spreader_thickness,
            "sink_side": self.sink_side,
            "sink_thickness": self.sink_thickness,
            "convection_resistance": self.convection_resistance,
            "die_capacitance_factor": self.die_capacitance_factor,
        }
        for name, value in positives.items():
            if value <= 0.0:
                raise ThermalModelError(f"package parameter {name} must be > 0")
        if self.sink_side < self.spreader_side:
            raise ThermalModelError("heat sink must be at least as wide as spreader")

    # --- derived lumped elements -------------------------------------------------

    @property
    def spreader_area(self) -> float:
        """Spreader footprint in m^2."""
        return self.spreader_side**2

    @property
    def sink_area(self) -> float:
        """Sink base footprint in m^2."""
        return self.sink_side**2

    @property
    def spreader_capacitance(self) -> float:
        """Lumped spreader capacitance in J/K."""
        return self.package_material.capacitance(
            self.spreader_area * self.spreader_thickness
        )

    @property
    def sink_capacitance(self) -> float:
        """Lumped sink capacitance in J/K."""
        return self.package_material.capacitance(self.sink_area * self.sink_thickness)

    def block_vertical_resistance(self, block_area: float) -> float:
        """Resistance (K/W) from one die block down to the spreader node:
        conduction through the die, the interface material, and half the
        spreader thickness (the spreading path into the lumped spreader)."""
        if block_area <= 0.0:
            raise ThermalModelError("block area must be > 0")
        die = self.die_material.conduction_resistance(self.die_thickness, block_area)
        interface = self.interface_resistance_per_area / block_area
        into_spreader = self.package_material.conduction_resistance(
            self.spreader_thickness / 2.0, block_area
        )
        return die + interface + into_spreader

    def spreader_to_sink_resistance(self, die_area: float) -> float:
        """Resistance (K/W) from the spreader node to the sink node:
        the remaining half spreader, a spreading (constriction) term from the
        die footprint into the wider spreader, and half the sink base."""
        if die_area <= 0.0:
            raise ThermalModelError("die area must be > 0")
        half_spreader = self.package_material.conduction_resistance(
            self.spreader_thickness / 2.0, self.spreader_area
        )
        # First-order constriction resistance for a square source of side d
        # feeding a wider slab: R ~= 1 / (2 k d).
        die_side = die_area**0.5
        constriction = 1.0 / (
            2.0 * self.package_material.thermal_conductivity * die_side
        )
        half_sink = self.package_material.conduction_resistance(
            self.sink_thickness / 2.0, self.sink_area
        )
        return half_spreader + constriction + half_sink

    def lateral_resistance(
        self, center_distance: float, shared_edge_length: float
    ) -> float:
        """Lateral resistance (K/W) between two abutting die blocks: 1-D
        conduction over the centre-to-centre distance through the silicon
        cross-section ``die_thickness x shared_edge_length``."""
        if center_distance <= 0.0 or shared_edge_length <= 0.0:
            raise ThermalModelError("lateral path needs positive geometry")
        return self.die_material.conduction_resistance(
            center_distance, self.die_thickness * shared_edge_length
        )

    def block_capacitance(self, block_area: float) -> float:
        """Lumped die-block capacitance in J/K (with the lumping factor)."""
        return self.die_capacitance_factor * self.die_material.capacitance(
            block_area * self.die_thickness
        )


def default_package() -> ThermalPackage:
    """The paper's low-cost package (1.0 K/W convection, 45 C ambient)."""
    return ThermalPackage()
