"""PI / integral controllers and the low-pass filter."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dtm import IntegralController, LowPassFilter, PIController
from repro.errors import DtmConfigError


class TestPIController:
    def test_output_zero_at_setpoint_from_rest(self):
        c = PIController(kp=1.0, ki=10.0, setpoint=81.8,
                         output_min=0.0, output_max=1.0)
        assert c.update(81.8, 1e-4) == pytest.approx(0.0)

    def test_proportional_term(self):
        c = PIController(kp=0.5, ki=0.0001, setpoint=80.0,
                         output_min=0.0, output_max=10.0)
        out = c.update(82.0, 1e-6)  # tiny dt: integral negligible
        assert out == pytest.approx(0.5 * 2.0, rel=1e-3)

    def test_integral_accumulates(self):
        c = PIController(kp=0.0, ki=100.0, setpoint=80.0,
                         output_min=0.0, output_max=10.0)
        first = c.update(81.0, 1e-2)
        second = c.update(81.0, 1e-2)
        assert second == pytest.approx(2.0 * first)

    def test_output_clamped(self):
        c = PIController(kp=10.0, ki=0.0001, setpoint=80.0,
                         output_min=0.0, output_max=1.0)
        assert c.update(100.0, 1e-4) == 1.0
        assert c.update(0.0, 1e-4) == 0.0

    def test_anti_windup_recovers_quickly(self):
        c = PIController(kp=0.0, ki=100.0, setpoint=80.0,
                         output_min=0.0, output_max=1.0)
        # Drive hard into saturation for a long time.
        for _ in range(200):
            c.update(90.0, 1e-2)
        # One small negative error must start reducing the output
        # immediately -- without anti-windup it would stay pinned.
        out = c.update(79.0, 1e-2)
        assert out < 1.0

    def test_unwinding_direction_integrates_while_clamped(self):
        c = PIController(kp=0.0, ki=1.0, setpoint=0.0,
                         output_min=0.0, output_max=1.0)
        for _ in range(5):
            c.update(10.0, 1.0)  # deep saturation
        # Negative errors unwind even while output is still clamped.
        c.update(-4.0, 1.0)
        c.update(-4.0, 1.0)
        out = c.update(-4.0, 1.0)
        assert out < 1.0

    def test_reset(self):
        c = PIController(kp=0.0, ki=10.0, setpoint=80.0,
                         output_min=0.0, output_max=10.0)
        c.update(85.0, 1.0)
        c.reset()
        assert c.update(80.0, 1e-9) == pytest.approx(0.0)

    def test_rejects_bad_configuration(self):
        with pytest.raises(DtmConfigError):
            PIController(kp=1.0, ki=1.0, setpoint=0.0,
                         output_min=1.0, output_max=0.0)
        with pytest.raises(DtmConfigError):
            PIController(kp=0.0, ki=0.0, setpoint=0.0,
                         output_min=0.0, output_max=1.0)
        with pytest.raises(DtmConfigError):
            PIController(kp=-1.0, ki=1.0, setpoint=0.0,
                         output_min=0.0, output_max=1.0)

    def test_rejects_non_positive_dt(self):
        c = PIController(kp=1.0, ki=1.0, setpoint=0.0,
                         output_min=0.0, output_max=1.0)
        with pytest.raises(DtmConfigError):
            c.update(1.0, 0.0)

    @settings(max_examples=30, deadline=None)
    @given(measurements=st.lists(st.floats(-100, 100), min_size=1, max_size=50))
    def test_property_output_always_in_range(self, measurements):
        c = PIController(kp=0.5, ki=50.0, setpoint=0.0,
                         output_min=0.0, output_max=1.0)
        for m in measurements:
            out = c.update(m, 1e-3)
            assert 0.0 <= out <= 1.0


class TestIntegralController:
    def test_is_pure_integral(self):
        c = IntegralController(ki=10.0, setpoint=80.0,
                               output_min=0.0, output_max=5.0)
        out = c.update(81.0, 0.1)
        assert out == pytest.approx(10.0 * 1.0 * 0.1)

    def test_unwinds_below_setpoint(self):
        c = IntegralController(ki=10.0, setpoint=80.0,
                               output_min=0.0, output_max=5.0)
        up = c.update(82.0, 0.1)
        down = c.update(78.0, 0.1)
        assert down < up


class TestLowPassFilter:
    def test_first_sample_primes_exactly(self):
        f = LowPassFilter(alpha=0.25)
        assert f.update(85.0) == 85.0

    def test_smooths_subsequent_samples(self):
        f = LowPassFilter(alpha=0.25)
        f.update(80.0)
        assert f.update(84.0) == pytest.approx(81.0)

    def test_converges_to_constant_input(self):
        f = LowPassFilter(alpha=0.3)
        f.update(80.0)
        for _ in range(60):
            value = f.update(85.0)
        assert value == pytest.approx(85.0, abs=1e-3)

    def test_alpha_one_is_pass_through(self):
        f = LowPassFilter(alpha=1.0)
        f.update(1.0)
        assert f.update(42.0) == 42.0

    def test_reset(self):
        f = LowPassFilter(alpha=0.5)
        f.update(100.0)
        f.reset()
        assert f.update(10.0) == 10.0

    def test_rejects_bad_alpha(self):
        with pytest.raises(DtmConfigError):
            LowPassFilter(alpha=0.0)
        with pytest.raises(DtmConfigError):
            LowPassFilter(alpha=1.5)

    @given(samples=st.lists(st.floats(0.0, 100.0), min_size=2, max_size=40))
    def test_property_output_within_sample_envelope(self, samples):
        f = LowPassFilter(alpha=0.3)
        for s in samples:
            out = f.update(s)
            assert min(samples) - 1e-9 <= out <= max(samples) + 1e-9
