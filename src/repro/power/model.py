"""The block-level power model facade.

:class:`PowerModel` combines the dynamic and leakage components and speaks
in per-block mappings, so the co-simulation engine never touches the
individual formulas.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Union

import numpy as np

from repro.errors import PowerModelError
from repro.floorplan.floorplan import Floorplan
from repro.power.budget import default_power_specs
from repro.power.dynamic import BlockPowerSpec, dynamic_power
from repro.power.leakage import LeakageParameters, leakage_power
from repro.power.technology import Technology, default_technology
from repro.power.vf_curve import VoltageFrequencyCurve


class PowerModel:
    """Computes per-block power from activities, operating point and
    temperatures.

    Parameters
    ----------
    floorplan:
        Defines the block set; every block needs a spec.
    specs:
        Per-block power characteristics; defaults to the Alpha budget.
    technology:
        Process parameters; defaults to 130 nm / 1.3 V / 3 GHz.
    leakage_params:
        Leakage curve shape.
    """

    def __init__(
        self,
        floorplan: Floorplan,
        specs: Optional[Mapping[str, BlockPowerSpec]] = None,
        technology: Optional[Technology] = None,
        leakage_params: Optional[LeakageParameters] = None,
    ):
        self._floorplan = floorplan
        self._specs = dict(specs) if specs is not None else default_power_specs()
        self._tech = technology if technology is not None else default_technology()
        self._leakage = (
            leakage_params if leakage_params is not None else LeakageParameters()
        )
        missing = [n for n in floorplan.block_names if n not in self._specs]
        if missing:
            raise PowerModelError(f"no power spec for blocks: {missing}")
        self._vf_curve = VoltageFrequencyCurve(self._tech)
        # Per-block spec coefficients in floorplan order, precomputed once
        # so the hot path can evaluate all blocks with a handful of array
        # operations instead of two Python calls per block per step.
        self._names = tuple(floorplan.block_names)
        self._index = {name: i for i, name in enumerate(self._names)}
        self._peak_dynamic_w = np.array(
            [self._specs[n].peak_dynamic_w for n in self._names]
        )
        self._clock_fraction = np.array(
            [self._specs[n].clock_fraction for n in self._names]
        )
        self._leakage_ref_w = np.array(
            [self._specs[n].leakage_ref_w for n in self._names]
        )
        # Dynamic power split into its activity-independent and
        # activity-proportional parts, so the hot path evaluates
        # ``base + slope * activity`` without forming the intermediate
        # switching-fraction array.
        self._dyn_base_w = self._peak_dynamic_w * self._clock_fraction
        self._dyn_act_w = self._peak_dynamic_w * (1.0 - self._clock_fraction)
        self._dyn_buf = np.empty(len(self._names))
        self._leak_buf = np.empty(len(self._names))
        # (voltage, frequency) -> (dynamic scale, leakage scale); DTM uses
        # a handful of operating points per run, so validating and scaling
        # each once keeps the per-step cost to pure array arithmetic.
        self._op_cache: Dict[tuple, tuple] = {}

    # --- introspection -----------------------------------------------------------

    @property
    def floorplan(self) -> Floorplan:
        """The floorplan the model covers."""
        return self._floorplan

    @property
    def technology(self) -> Technology:
        """Process parameters."""
        return self._tech

    @property
    def vf_curve(self) -> VoltageFrequencyCurve:
        """The voltage-to-frequency curve for this technology."""
        return self._vf_curve

    @property
    def leakage_params(self) -> LeakageParameters:
        """Leakage curve shape."""
        return self._leakage

    @property
    def block_names(self) -> tuple:
        """Block names in the model's evaluation (floorplan) order."""
        return self._names

    def block_index(self, block: str) -> int:
        """Position of ``block`` in the vectorized evaluation order."""
        try:
            return self._index[block]
        except KeyError:
            raise PowerModelError(f"no power spec for block {block!r}") from None

    def spec(self, block: str) -> BlockPowerSpec:
        """Power spec of one block."""
        try:
            return self._specs[block]
        except KeyError:
            raise PowerModelError(f"no power spec for block {block!r}") from None

    # --- evaluation --------------------------------------------------------------

    def _check_operating_point(self, voltage: float, frequency: float) -> float:
        """Validate (V, f) against the curve; return the relative voltage."""
        v_rel = self._tech.relative_voltage(voltage)
        f_max = self._vf_curve.frequency(voltage)
        if frequency > f_max * (1.0 + 1e-9):
            raise PowerModelError(
                f"frequency {frequency / 1e9:.3f} GHz exceeds the maximum "
                f"{f_max / 1e9:.3f} GHz allowed at {voltage} V"
            )
        if frequency <= 0.0:
            raise PowerModelError("frequency must be > 0")
        return v_rel

    def _operating_point(self, voltage: float, frequency: float) -> tuple:
        """Validated ``(dynamic scale, leakage scale)`` for (V, f), cached
        per distinct operating point."""
        key = (voltage, frequency)
        cached = self._op_cache.get(key)
        if cached is None:
            v_rel = self._check_operating_point(voltage, frequency)
            f_rel = frequency / self._tech.frequency_nominal
            cached = (
                v_rel * v_rel * f_rel,
                v_rel**self._leakage.voltage_exponent,
            )
            if len(self._op_cache) >= 256:
                self._op_cache.clear()
            self._op_cache[key] = cached
        return cached

    def block_powers_vector(
        self,
        activities: np.ndarray,
        voltage: float,
        frequency: float,
        temperatures: np.ndarray,
        clock_enabled_fraction: Union[float, np.ndarray] = 1.0,
        check: bool = True,
    ) -> np.ndarray:
        """Total (dynamic + leakage) power of every block as one array.

        This is the hot-path form of :meth:`block_powers`: inputs and
        output are arrays over :attr:`block_names` (floorplan order), and
        all per-block spec coefficients were precomputed at construction,
        so one call costs a handful of numpy operations regardless of the
        block count.

        Parameters
        ----------
        activities:
            (n_blocks,) switching activities in [0, 1], floorplan order.
        voltage, frequency:
            Operating point, validated against the V/f curve.
        temperatures:
            (n_blocks,) block temperatures in Celsius for the leakage term.
        clock_enabled_fraction:
            Scalar clock-enabled fraction, or an (n_blocks,) array for
            per-block gating (local toggling).
        check:
            Validate array shapes and value ranges.  The simulation inner
            loop passes ``False`` for inputs it constructed itself; the
            operating point is always validated (once per distinct
            (V, f)).

        Returns
        -------
        numpy.ndarray
            (n_blocks,) total power in watts, floorplan order.  With
            ``check=False`` the returned array is an internal buffer
            reused by the next call -- consume or copy it immediately.
        """
        n = len(self._names)
        acts = activities
        temps = temperatures
        gate: Union[float, np.ndarray] = clock_enabled_fraction
        if check:
            acts = np.asarray(acts, dtype=float)
            temps = np.asarray(temps, dtype=float)
            if acts.shape != (n,):
                raise PowerModelError(
                    f"activities have shape {acts.shape}, expected ({n},)"
                )
            if temps.shape != (n,):
                raise PowerModelError(
                    f"temperatures have shape {temps.shape}, expected ({n},)"
                )
            if np.any((acts < 0.0) | (acts > 1.0)):
                bad = int(np.argmax((acts < 0.0) | (acts > 1.0)))
                raise PowerModelError(
                    f"block {self._names[bad]!r}: activity {acts[bad]} "
                    f"outside [0, 1]"
                )
            if isinstance(gate, (int, float)):
                gate = float(gate)
                if not 0.0 <= gate <= 1.0:
                    raise PowerModelError(
                        f"clock enabled fraction {gate} outside [0, 1]"
                    )
            else:
                gate = np.asarray(gate, dtype=float)
                if gate.shape != (n,):
                    raise PowerModelError(
                        f"clock gate vector has shape {gate.shape}, "
                        f"expected ({n},)"
                    )
                if np.any((gate < 0.0) | (gate > 1.0)):
                    bad = int(np.argmax((gate < 0.0) | (gate > 1.0)))
                    raise PowerModelError(
                        f"block {self._names[bad]!r}: clock fraction "
                        f"{gate[bad]} outside [0, 1]"
                    )
        dyn_scale, leak_scale = self._operating_point(voltage, frequency)
        # All arithmetic lands in two preallocated buffers: on a
        # ~17-block chip the per-call cost is numpy dispatch, not flops,
        # so every avoided temporary counts.
        out = self._dyn_buf
        np.multiply(self._dyn_act_w, acts, out=out)
        out += self._dyn_base_w
        if isinstance(gate, np.ndarray):
            out *= gate
            out *= dyn_scale
        else:
            out *= gate * dyn_scale
        leak = self._leak_buf
        np.subtract(temps, self._leakage.reference_temp_c, out=leak)
        leak *= self._leakage.beta_per_k
        np.exp(leak, out=leak)
        leak *= leak_scale
        leak *= self._leakage_ref_w
        out += leak
        return out.copy() if check else out

    def dynamic_vector_w(
        self,
        activities: np.ndarray,
        voltage: float,
        frequency: float,
        clock_enabled_fraction: Union[float, np.ndarray] = 1.0,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """The dynamic-power half of :meth:`block_powers_vector`.

        Runs the identical float operations in the identical order as
        the dynamic portion of the fused call, so
        ``dynamic_vector_w(...) + leakage_vector_w(...)`` decomposes a
        ``block_powers_vector`` result exactly (the engine's
        event-driven stride relies on this to isolate leakage drift).
        Inputs are trusted (no validation); pass ``out`` to avoid
        clobbering the model's internal buffers.
        """
        if out is None:
            out = np.empty(len(self._names))
        dyn_scale, _ = self._operating_point(voltage, frequency)
        gate = clock_enabled_fraction
        np.multiply(self._dyn_act_w, activities, out=out)
        out += self._dyn_base_w
        if isinstance(gate, np.ndarray):
            out *= gate
            out *= dyn_scale
        else:
            out *= gate * dyn_scale
        return out

    def leakage_vector_w(
        self,
        temperatures: np.ndarray,
        voltage: float,
        frequency: float,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """The leakage half of :meth:`block_powers_vector`.

        Exponential-in-temperature leakage at the given operating point,
        computed with the same float operations as the fused call (see
        :meth:`dynamic_vector_w`).  Inputs are trusted; pass ``out`` to
        avoid clobbering the model's internal buffers.
        """
        if out is None:
            out = np.empty(len(self._names))
        _, leak_scale = self._operating_point(voltage, frequency)
        np.subtract(temperatures, self._leakage.reference_temp_c, out=out)
        out *= self._leakage.beta_per_k
        np.exp(out, out=out)
        out *= leak_scale
        out *= self._leakage_ref_w
        return out

    def block_powers(
        self,
        activities: Mapping[str, float],
        voltage: float,
        frequency: float,
        temperatures: Mapping[str, float],
        clock_enabled_fraction: Union[float, Mapping[str, float]] = 1.0,
    ) -> Dict[str, float]:
        """Total (dynamic + leakage) power per block, in watts.

        A thin mapping-based wrapper over :meth:`block_powers_vector` for
        callers that speak ``{block: value}``; the simulation hot path
        uses the vector form directly.

        Parameters
        ----------
        activities:
            Per-block switching activity in [0, 1]; every floorplan block
            must be present.
        voltage:
            Supply voltage in volts.
        frequency:
            Clock frequency in hertz (must respect the V/f curve; validated
            against the curve with a small tolerance).
        temperatures:
            Per-block temperatures in Celsius for the leakage term.
        clock_enabled_fraction:
            Fraction of the interval the clock runs: a single number for
            global clock gating, or a per-block mapping (missing blocks
            default to 1.0) for local toggling of individual clock
            domains.
        """
        n = len(self._names)
        acts = np.empty(n)
        temps = np.empty(n)
        for i, name in enumerate(self._names):
            if name not in activities:
                raise PowerModelError(f"no activity given for block {name!r}")
            if name not in temperatures:
                raise PowerModelError(f"no temperature given for block {name!r}")
            acts[i] = activities[name]
            temps[i] = temperatures[name]
        if isinstance(clock_enabled_fraction, (int, float)):
            gate: Union[float, np.ndarray] = clock_enabled_fraction
        else:
            gate = np.array(
                [clock_enabled_fraction.get(name, 1.0) for name in self._names]
            )
        vector = self.block_powers_vector(acts, voltage, frequency, temps, gate)
        return {name: float(vector[i]) for i, name in enumerate(self._names)}

    def block_powers_reference(
        self,
        activities: Mapping[str, float],
        voltage: float,
        frequency: float,
        temperatures: Mapping[str, float],
        clock_enabled_fraction: Union[float, Mapping[str, float]] = 1.0,
    ) -> Dict[str, float]:
        """Scalar per-block evaluation (the pre-vectorization path).

        Composes :func:`~repro.power.dynamic.dynamic_power` and
        :func:`~repro.power.leakage.leakage_power` block by block.  Kept as
        the numerical regression anchor for :meth:`block_powers_vector`
        (see ``tests/power/test_model.py`` and the engine's
        ``power_path="mapping"`` mode); not used on the hot path.
        """
        v_rel = self._check_operating_point(voltage, frequency)
        f_rel = frequency / self._tech.frequency_nominal

        per_block_gate = not isinstance(clock_enabled_fraction, (int, float))
        powers: Dict[str, float] = {}
        for name in self._floorplan.block_names:
            if name not in activities:
                raise PowerModelError(f"no activity given for block {name!r}")
            if name not in temperatures:
                raise PowerModelError(f"no temperature given for block {name!r}")
            spec = self._specs[name]
            if per_block_gate:
                gate = clock_enabled_fraction.get(name, 1.0)
            else:
                gate = clock_enabled_fraction
            dyn = dynamic_power(spec, activities[name], v_rel, f_rel, gate)
            leak = leakage_power(
                spec.leakage_ref_w, v_rel, temperatures[name], self._leakage
            )
            powers[name] = dyn + leak
        return powers

    def total_power(
        self,
        activities: Mapping[str, float],
        voltage: float,
        frequency: float,
        temperatures: Mapping[str, float],
        clock_enabled_fraction: Union[float, Mapping[str, float]] = 1.0,
    ) -> float:
        """Chip-wide power in watts for the given operating point."""
        return sum(
            self.block_powers(
                activities, voltage, frequency, temperatures, clock_enabled_fraction
            ).values()
        )
