"""Geometric validation of floorplans.

:class:`~repro.floorplan.floorplan.Floorplan` already rejects overlapping
blocks at construction time; this module adds the stronger checks needed
before a floorplan is used to derive a thermal RC network:

* the blocks tile the bounding box exactly (no gaps), so every part of the
  die has a thermal node;
* every block is reachable from every other through shared edges, so the
  lateral heat-flow graph is connected.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.errors import FloorplanError
from repro.floorplan.floorplan import Floorplan

_AREA_RELATIVE_TOLERANCE = 1e-9
"""Relative area mismatch tolerated when checking full coverage."""


def _coverage_gap(floorplan: Floorplan) -> float:
    """Uncovered fraction of the bounding box (0.0 when fully tiled)."""
    die_area = floorplan.die_area
    if die_area <= 0.0:
        raise FloorplanError("floorplan bounding box has zero area")
    return (die_area - floorplan.total_block_area) / die_area


def _connected_components(floorplan: Floorplan) -> List[Set[str]]:
    """Connected components of the block-adjacency graph."""
    neighbours: Dict[str, Set[str]] = {name: set() for name in floorplan.block_names}
    for pair in floorplan.adjacencies:
        neighbours[pair.block_a].add(pair.block_b)
        neighbours[pair.block_b].add(pair.block_a)

    remaining = set(floorplan.block_names)
    components: List[Set[str]] = []
    while remaining:
        frontier = [next(iter(remaining))]
        component: Set[str] = set()
        while frontier:
            name = frontier.pop()
            if name in component:
                continue
            component.add(name)
            frontier.extend(neighbours[name] - component)
        components.append(component)
        remaining -= component
    return components


def validate_floorplan(floorplan: Floorplan, require_full_coverage: bool = True) -> None:
    """Raise :class:`FloorplanError` if ``floorplan`` is unsuitable for
    thermal modelling.

    Parameters
    ----------
    floorplan:
        The floorplan to check (already overlap-free by construction).
    require_full_coverage:
        When true (the default), the blocks must tile the bounding box with
        no gaps.  Pass false for deliberately partial floorplans.
    """
    if require_full_coverage:
        gap = _coverage_gap(floorplan)
        if abs(gap) > _AREA_RELATIVE_TOLERANCE:
            raise FloorplanError(
                f"floorplan {floorplan.name!r} leaves {gap:.3e} of the die "
                f"uncovered (blocks must tile the bounding box)"
            )
    components = _connected_components(floorplan)
    if len(components) != 1:
        sizes = sorted((len(c) for c in components), reverse=True)
        raise FloorplanError(
            f"floorplan {floorplan.name!r} is disconnected: "
            f"{len(components)} components of sizes {sizes}"
        )
