"""Per-run progress heartbeats: a lock-free slot relaying live status.

The engine step loops (single-core, multi-core, and the lockstep
batcher's inner generators) run for seconds to minutes per spec; until
now their only output was the final :class:`~repro.sim.results.
RunResult`.  This module lets each in-flight run publish a small
progress record -- done/total, simulated time, executed steps, peak
temperature, DTM state -- that the sweep parent and the service can
read *while the run executes*, including across the process-pool
boundary.

Design constraints, in order:

1. **The heartbeat-off hot path must cost one pointer compare.**  The
   engine captures :func:`active` once per run; when no publisher is
   registered it holds ``None`` and the per-sensor-sample hook is a
   single ``is not None`` branch.  ``begin`` with the module disabled
   returns ``None`` without allocating (asserted by
   ``tests/obs/test_overhead.py``).
2. **Readers must never block writers.**  Cross-process relay uses a
   per-process slot file (``<obs_dir>/hb-<pid>.slot``) written with a
   seqlock: the writer flips a sequence word odd, rewrites the payload,
   flips it even.  A reader that observes an odd or changing sequence
   (or a torn JSON payload) simply retries or skips -- no locks, no
   fsync, one small ``pwrite`` per publish.
3. **Publishes are wall-clock throttled** (default 0.25 s,
   ``REPRO_HEARTBEAT_S``), so even a pathological sensor cadence costs
   a bounded number of writes per second.

The slot file rides the existing spill channel's directory
(:func:`~repro.obs.metrics.obs_dir`): pool workers inherit the path
over fork exactly like spill files, and the parent's :func:`snapshot`
merges its own in-memory records with every ``hb-*.slot`` present,
freshest timestamp winning.

Heartbeats default **off** (``REPRO_HEARTBEAT``) so batch runs pay
nothing; the sweep service switches them on at startup, which is where
live progress actually has a consumer.
"""

from __future__ import annotations

import json
import os
import struct
import time
from typing import Dict, List, Optional

from repro.obs import metrics

HEARTBEAT_ENV = "REPRO_HEARTBEAT"
"""Set to ``1`` to publish per-run progress heartbeats.  Off by
default; ``python -m repro serve`` enables it unless explicitly set."""

HEARTBEAT_INTERVAL_ENV = "REPRO_HEARTBEAT_S"
"""Minimum wall-clock seconds between slot publishes (default 0.25)."""

DEFAULT_INTERVAL_S = 0.25

_ENABLED = os.environ.get(HEARTBEAT_ENV, "").strip().lower() not in metrics._FALSEY


def _env_interval() -> float:
    raw = os.environ.get(HEARTBEAT_INTERVAL_ENV, "").strip()
    try:
        value = float(raw) if raw else DEFAULT_INTERVAL_S
    except ValueError:
        return DEFAULT_INTERVAL_S
    return max(0.0, value)


_INTERVAL_S = _env_interval()

# Publisher stack (nested begin/release pairs -- the lockstep driver
# interleaves many runs, each bracketing its generator advances), the
# in-flight records of this process, and a bounded table of recently
# finished runs so late status queries still resolve.
_STACK: List["_Publisher"] = []
_INFLIGHT: Dict[str, Dict[str, object]] = {}
_DONE: Dict[str, Dict[str, object]] = {}
_DONE_LIMIT = 256

# Slot-file seqlock: 8-byte little-endian sequence + 4-byte payload
# length, padded to a 16-byte header; payload is a JSON array of the
# process's in-flight records.  Even sequence = payload valid.
_HEADER = struct.Struct("<QI")
_HEADER_SIZE = 16
_SLOT_RECORD_CAP = 32

_SLOT_FD: Optional[int] = None
_SLOT_KEY: Optional[tuple] = None
_SLOT_SEQ = 0


def enabled() -> bool:
    """True when runs publish progress heartbeats."""
    return _ENABLED


def set_enabled(on: bool) -> bool:
    """Set the heartbeat flag; returns the previous value."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(on)
    return previous


def set_publish_interval(seconds: float) -> float:
    """Set the minimum wall seconds between publishes; returns the
    previous value.  Tests set 0.0 to make every publish land."""
    global _INTERVAL_S
    previous = _INTERVAL_S
    _INTERVAL_S = max(0.0, float(seconds))
    return previous


class _Publisher:
    """Progress outlet for one in-flight run.

    Bound to the run's digest key at :func:`begin`; the engine calls
    :meth:`publish` from its sensor-sample branch with plain loop
    locals -- the publisher owns throttling, record shaping and the
    slot write, so the engine stays free of any heartbeat logic beyond
    one call."""

    __slots__ = ("key", "benchmark", "policy", "total", "interval_s", "_next")

    def __init__(self, key: str, benchmark: str, policy: str, total: float):
        self.key = key
        self.benchmark = benchmark
        self.policy = policy
        self.total = float(total)
        self.interval_s = _INTERVAL_S
        self._next = 0.0

    def publish(
        self,
        done: float,
        time_s: float,
        steps: int,
        peak_temp_c: float,
        engaged: bool,
    ) -> None:
        """Publish one progress sample (wall-clock throttled)."""
        now = time.monotonic()
        if now < self._next:
            return
        self._next = now + self.interval_s
        _INFLIGHT[self.key] = {
            "key": self.key,
            "benchmark": self.benchmark,
            "policy": self.policy,
            "state": "running",
            "done": float(done),
            "total": self.total,
            "time_s": float(time_s),
            "steps": int(steps),
            "peak_temp_c": float(peak_temp_c),
            "dtm_state": "engaged" if engaged else "nominal",
            "ts": time.time(),
            "pid": os.getpid(),
        }
        _write_slot()


def begin(
    key: str, benchmark: str, policy: str, total: float
) -> Optional[_Publisher]:
    """Register a run and return its publisher (``None`` when off).

    Pushes the publisher onto the ambient stack so the engine's
    ``iter_run`` -- which knows nothing about specs or digests -- can
    pick it up via :func:`active` when its generator body first runs."""
    if not _ENABLED:
        return None
    publisher = _Publisher(key, benchmark, policy, total)
    _STACK.append(publisher)
    _INFLIGHT[key] = {
        "key": key,
        "benchmark": benchmark,
        "policy": policy,
        "state": "running",
        "done": 0.0,
        "total": publisher.total,
        "time_s": 0.0,
        "steps": 0,
        "peak_temp_c": 0.0,
        "dtm_state": "nominal",
        "ts": time.time(),
        "pid": os.getpid(),
    }
    _write_slot()
    return publisher


def active() -> Optional[_Publisher]:
    """The innermost registered publisher, or ``None``.

    Allocation-free either way -- this is the engine's once-per-run
    capture point."""
    if _STACK:
        return _STACK[-1]
    return None


def release(publisher: Optional[_Publisher]) -> None:
    """Pop the publisher off the ambient stack without finishing it.

    The lockstep driver releases after a generator's first advance so
    the *next* run's generator captures its own publisher; the run
    itself stays in flight until :func:`finish`."""
    if publisher is not None and publisher in _STACK:
        _STACK.remove(publisher)


def finish(publisher: Optional[_Publisher], error: Optional[str] = None) -> None:
    """Mark a run finished: final record, slot rewrite, stack cleanup."""
    if publisher is None:
        return
    release(publisher)
    record = _INFLIGHT.pop(publisher.key, None)
    if record is None:
        record = {
            "key": publisher.key,
            "benchmark": publisher.benchmark,
            "policy": publisher.policy,
            "total": publisher.total,
        }
    record = dict(record)
    record["state"] = "failed" if error else "done"
    if error:
        record["error"] = error
    elif publisher.total > 0.0:
        record["done"] = publisher.total
    record["ts"] = time.time()
    record["pid"] = os.getpid()
    _DONE[publisher.key] = record
    while len(_DONE) > _DONE_LIMIT:
        _DONE.pop(next(iter(_DONE)))
    _write_slot()


def percent(record: Dict[str, object]) -> float:
    """Percent complete for one heartbeat record (clamped to 100)."""
    total = float(record.get("total") or 0.0)
    if total <= 0.0:
        return 100.0 if record.get("state") in ("done", "failed") else 0.0
    return min(100.0, 100.0 * float(record.get("done") or 0.0) / total)


def snapshot() -> Dict[str, Dict[str, object]]:
    """Merged progress view: local records plus every slot file.

    Returns ``{key: record}`` with a computed ``percent`` field; when a
    key appears in several sources (a worker's slot file and a stale
    parent record, say) the freshest ``ts`` wins."""
    merged: Dict[str, Dict[str, object]] = {}

    def _offer(record: Dict[str, object]) -> None:
        key = record.get("key")
        if not isinstance(key, str):
            return
        held = merged.get(key)
        if held is None or float(record.get("ts") or 0.0) >= float(
            held.get("ts") or 0.0
        ):
            merged[key] = record

    try:
        slot_files = sorted(metrics.obs_dir().glob("hb-*.slot"))
    except OSError:  # pragma: no cover - obs dir raced away
        slot_files = []
    for path in slot_files:
        for record in _read_slot(path):
            _offer(record)
    for record in _DONE.values():
        _offer(record)
    for record in _INFLIGHT.values():
        _offer(record)
    out: Dict[str, Dict[str, object]] = {}
    for key, record in merged.items():
        record = dict(record)
        record["percent"] = percent(record)
        out[key] = record
    return out


def _slot_fd() -> int:
    """This process's slot-file descriptor, reopened after fork."""
    global _SLOT_FD, _SLOT_KEY
    path = metrics.obs_dir() / f"hb-{os.getpid()}.slot"
    key = (os.getpid(), str(path))
    if _SLOT_FD is None or _SLOT_KEY != key:
        if _SLOT_FD is not None and _SLOT_KEY is not None and (
            _SLOT_KEY[0] == os.getpid()
        ):
            try:
                os.close(_SLOT_FD)
            except OSError:  # pragma: no cover - already closed
                pass
        _SLOT_FD = os.open(str(path), os.O_CREAT | os.O_RDWR, 0o644)
        _SLOT_KEY = key
    return _SLOT_FD


def _write_slot() -> None:
    """Seqlock write of this process's in-flight records.

    Best-effort: a slot write must never take down the run publishing
    it, so filesystem errors are swallowed."""
    global _SLOT_SEQ
    try:
        fd = _slot_fd()
        records = list(_INFLIGHT.values())
        if len(records) > _SLOT_RECORD_CAP:
            records.sort(key=lambda rec: float(rec.get("ts") or 0.0))
            records = records[-_SLOT_RECORD_CAP:]
        payload = json.dumps(records, sort_keys=True).encode("utf-8")
        _SLOT_SEQ += 1  # odd: write in progress
        os.pwrite(fd, _HEADER.pack(_SLOT_SEQ, 0), 0)
        os.pwrite(fd, payload, _HEADER_SIZE)
        _SLOT_SEQ += 1  # even: payload valid
        os.pwrite(fd, _HEADER.pack(_SLOT_SEQ, len(payload)), 0)
    except OSError:  # pragma: no cover - disk full / dir removed
        pass


def _read_slot(path) -> List[Dict[str, object]]:
    """Read one slot file; torn or in-progress writes yield ``[]``."""
    for _ in range(3):
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError:
            return []
        if len(data) < _HEADER_SIZE:
            return []
        seq, length = _HEADER.unpack_from(data, 0)
        if seq % 2 or len(data) < _HEADER_SIZE + length:
            continue  # writer mid-flight; retry
        try:
            records = json.loads(
                data[_HEADER_SIZE:_HEADER_SIZE + length].decode("utf-8")
            )
        except (ValueError, UnicodeDecodeError):
            continue  # torn payload the sequence check missed
        if isinstance(records, list):
            return [rec for rec in records if isinstance(rec, dict)]
        return []
    return []


def reset() -> None:
    """Clear all heartbeat state (test isolation).

    Leaves the enabled flag alone, mirroring the rest of the obs
    layer's reset discipline."""
    global _SLOT_FD, _SLOT_KEY, _SLOT_SEQ, _INTERVAL_S
    _STACK.clear()
    _INFLIGHT.clear()
    _DONE.clear()
    if _SLOT_FD is not None:
        try:
            os.close(_SLOT_FD)
        except OSError:  # pragma: no cover - already closed
            pass
    _SLOT_FD = None
    _SLOT_KEY = None
    _SLOT_SEQ = 0
    _INTERVAL_S = _env_interval()
