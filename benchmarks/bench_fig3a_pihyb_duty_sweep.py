"""Figure 3a: PI-Hyb slowdown versus maximum fetch-gating duty cycle.

Paper result: with DVS-stall the best maximum duty cycle is 3 (skip fetch
once every three cycles); slowdown rises sharply for deeper gating, while
the mild end of the sweep is nearly flat.
"""

from _helpers import (
    bench_instructions,
    bench_lockstep,
    bench_processes,
    reset_throughput,
    save_table,
    throughput_report,
)

from repro.analysis import render_table
from repro.analysis.experiments import fig3a_pihyb_duty_sweep
from repro.core import find_crossover


def _run(dvs_mode: str) -> str:
    reset_throughput()
    result = fig3a_pihyb_duty_sweep(
        dvs_mode=dvs_mode,
        instructions=bench_instructions(),
        processes=bench_processes(),
        lockstep=bench_lockstep(),
    )
    rows = []
    for duty, evaluation in sorted(result.evaluations.items(), reverse=True):
        rows.append(
            [duty, evaluation.mean_slowdown, evaluation.total_violations]
        )
    crossover = find_crossover(result)
    table = render_table(
        ["max duty cycle", "mean slowdown", "violations"],
        rows,
        title=(
            f"Figure 3a (DVS-{dvs_mode}): PI-Hyb duty-cycle sweep -- "
            f"crossover at duty {crossover:g} "
            f"(paper: 3 for stall, 20 for ideal)"
        ),
    )
    return table + "\n\n" + throughput_report()


def test_fig3a_duty_sweep_stall(benchmark):
    table = benchmark.pedantic(_run, args=("stall",), rounds=1, iterations=1)
    save_table("fig3a_stall", table)


def test_fig3a_duty_sweep_ideal(benchmark):
    table = benchmark.pedantic(_run, args=("ideal",), rounds=1, iterations=1)
    save_table("fig3a_ideal", table)
