"""Vector hot path versus mapping reference path.

The engine's default ``power_path="vector"`` keeps temperatures in the
solver's node vector and evaluates power with
:meth:`~repro.power.model.PowerModel.block_powers_vector`;
``power_path="mapping"`` replays the original per-block scalar pipeline.
Identical physics, different arithmetic order -- every run statistic must
agree to within floating-point reassociation noise (1e-9 relative), and
all discrete statistics must agree exactly.
"""

import pytest

from repro.dtm import DvsPolicy, FetchGatingPolicy, NoDtmPolicy
from repro.dtm.dvs import DvsConfig
from repro.sim import EngineConfig, SimulationEngine
from repro.workloads import build_benchmark

REL_TOL = 1e-9

EXACT_FIELDS = (
    "instructions",
    "cycles",
    "violations",
    "hottest_block",
    "dvs_switches",
    "migrations",
)
CLOSE_FIELDS = (
    "elapsed_s",
    "max_true_temp_c",
    "time_above_trigger_s",
    "dvs_low_time_s",
    "stall_time_s",
    "mean_gating_fraction",
    "mean_power_w",
)


@pytest.fixture(scope="module")
def gcc():
    return build_benchmark("gcc")


def _run_both(workload, policy_factory, settle_time_s=2.0e-4, **config_kwargs):
    # Pin dense stepping: the event-driven stride requires the vector
    # power pipeline, so the mapping path always steps densely.  This
    # suite asserts power-path arithmetic equivalence, which is only
    # meaningful step for step; stride-vs-dense fidelity is covered by
    # tests/sim/test_fast_forward.py.
    config_kwargs.setdefault("fast_forward", False)
    results = {}
    for path in ("vector", "mapping"):
        engine = SimulationEngine(
            workload,
            policy=policy_factory(),
            config=EngineConfig(power_path=path, **config_kwargs),
            seed=3,
        )
        init = engine.compute_initial_temperatures()
        results[path] = engine.run(
            3_000_000, initial=init, settle_time_s=settle_time_s
        )
    return results["vector"], results["mapping"]


def _assert_equivalent(vector, mapping):
    for field in EXACT_FIELDS:
        assert getattr(vector, field) == getattr(mapping, field), field
    for field in CLOSE_FIELDS:
        assert getattr(vector, field) == pytest.approx(
            getattr(mapping, field), rel=REL_TOL, abs=1e-15
        ), field


class TestVectorMappingEquivalence:
    def test_no_dtm(self, gcc):
        _assert_equivalent(*_run_both(gcc, NoDtmPolicy))

    def test_fetch_gating(self, gcc):
        _assert_equivalent(*_run_both(gcc, FetchGatingPolicy))

    def test_multi_step_dvs_stall(self, gcc):
        vector, mapping = _run_both(
            gcc,
            lambda: DvsPolicy(DvsConfig(level_count=5)),
            # Measure from t = 0: the multi-level controller makes its
            # switches while pulling the chip down from the unmanaged
            # steady state, and those stall sub-steps must be covered.
            settle_time_s=0.0,
            dvs_mode="stall",
        )
        _assert_equivalent(vector, mapping)
        # The scenario must actually exercise stall sub-steps, or the
        # equivalence claim says nothing about them.
        assert vector.dvs_switches >= 1
        assert vector.stall_time_s > 0.0
