"""Observability: metrics, structured events, span tracing, reports.

The paper's argument is carried entirely by time-series evidence --
sensor temperatures crossing the trigger, controller duty cycles, DVS
switches, fallback events -- and a reproduction that cannot *see* those
signals cannot be tuned or trusted.  This package is the cross-cutting
telemetry layer the rest of :mod:`repro` publishes into:

* :mod:`repro.obs.metrics` -- a low-overhead registry of counters,
  gauges and fixed-bucket histograms (:data:`~repro.obs.metrics.REGISTRY`);
* :mod:`repro.obs.events` -- structured JSONL event logging with
  run/sweep context (run id, worker pid) and a validating schema;
* :mod:`repro.obs.trace` -- ``with span("thermal.step"):`` timing with
  process-lifetime totals and per-run aggregation (the engine's
  per-section step timers record through it);
* :mod:`repro.obs.runctx` / :mod:`repro.obs.spill` -- per-run telemetry
  records that survive process-pool workers via per-worker spill files,
  merged by :func:`repro.sim.batch.run_many`;
* :mod:`repro.obs.report` -- the merged :class:`~repro.obs.report.
  SweepReport` (JSONL + Prometheus export, rendered by
  ``python -m repro report``);
* :mod:`repro.obs.export` -- registry snapshots as JSON and Prometheus
  text format.

Everything is gated on one module-level flag (``REPRO_OBS=1`` or
:func:`set_enabled`).  When disabled, the hot paths pay one boolean
check per run (not per step), ``span()`` returns a shared no-op
singleton, and ``emit()``/``inc()`` return immediately without
allocating -- the disabled-overhead tests assert both properties, and
results are bit-identical with observability on or off.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional, TextIO

from repro.obs.events import (
    emit,
    event_context,
    validate_events_file,
    validate_record,
)
from repro.obs.export import prometheus_text, registry_snapshot
from repro.obs.flightrec import (
    FLIGHT_DIR_ENV,
    FLIGHT_ENV,
    FLIGHT_LEN_ENV,
)
from repro.obs.heartbeat import (
    HEARTBEAT_ENV,
    HEARTBEAT_INTERVAL_ENV,
)
from repro.obs.metrics import (
    OBS_DIR_ENV,
    OBS_ENV,
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    enabled,
    inc,
    obs_dir,
    set_enabled,
)
from repro.obs.report import SweepReport
from repro.obs.trace import span

__all__ = [
    "FLIGHT_DIR_ENV",
    "FLIGHT_ENV",
    "FLIGHT_LEN_ENV",
    "HEARTBEAT_ENV",
    "HEARTBEAT_INTERVAL_ENV",
    "OBS_DIR_ENV",
    "OBS_ENV",
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SweepReport",
    "emit",
    "enabled",
    "event_context",
    "inc",
    "logging_setup",
    "obs_dir",
    "prometheus_text",
    "registry_snapshot",
    "reset_for_testing",
    "set_enabled",
    "span",
    "validate_events_file",
    "validate_record",
]

_LOG_FORMAT = "%(asctime)s %(levelname)s %(name)s: %(message)s"
_HANDLER: Optional[logging.Handler] = None


def logging_setup(
    level: int = logging.INFO,
    stream: Optional[TextIO] = None,
    capture_warnings: bool = True,
) -> logging.Logger:
    """Route the library's diagnostics through standard ``logging``.

    The numerical-health guards, the fault layer and the sweep
    supervisor all log to child loggers of ``"repro"``; without a
    configured handler those records fall through to logging's
    last-resort stderr handler (WARNING and up) and everything below
    is swallowed.  This attaches one stream handler to the ``"repro"``
    logger (idempotent -- calling again reconfigures the same handler)
    and optionally routes ``warnings.warn`` through logging too, so the
    supervisor's degradation warnings land in the same stream.

    Returns the configured ``"repro"`` logger.
    """
    global _HANDLER
    logger = logging.getLogger("repro")
    if _HANDLER is not None:
        logger.removeHandler(_HANDLER)
    _HANDLER = logging.StreamHandler(
        stream if stream is not None else sys.stderr
    )
    _HANDLER.setFormatter(logging.Formatter(_LOG_FORMAT))
    logger.addHandler(_HANDLER)
    logger.setLevel(level)
    if capture_warnings:
        logging.captureWarnings(True)
    return logger


def reset_for_testing() -> None:
    """Reset every piece of module-level observability state.

    For test isolation only: zeroes the registry, the span totals, any
    active run context, the event-log handle and the in-process spill
    records.  Does *not* touch the enabled flag.
    """
    from repro.obs import events, flightrec, heartbeat, runctx, spill, trace

    REGISTRY.reset()
    trace.reset_totals()
    trace.reset_run_stack()
    runctx.reset()
    events.reset()
    spill.reset()
    flightrec.reset()
    heartbeat.reset()
