"""The crash flight recorder: ring bounds, dumps, signal/crash hooks."""

import json
import os
import signal
import sys

import pytest

from repro.obs import events, flightrec, metrics


@pytest.fixture
def flight_on(obs_dir):
    previous = flightrec.set_enabled(True)
    flightrec.reset()
    yield
    flightrec.set_enabled(previous)
    flightrec.reset()


class TestRing:
    def test_note_appends_records(self, flight_on):
        flightrec.note("test.alpha", value=1)
        flightrec.note("test.beta")
        records = flightrec.snapshot()
        assert [r["event"] for r in records] == ["test.alpha", "test.beta"]
        assert records[0]["value"] == 1
        assert records[0]["pid"] == os.getpid()
        assert records[0]["ts"] > 0

    def test_ring_is_bounded(self, flight_on):
        for i in range(flightrec.DEFAULT_LEN + 100):
            flightrec.note("test.fill", i=i)
        records = flightrec.snapshot()
        assert len(records) == flightrec.DEFAULT_LEN
        # Oldest evicted, newest kept.
        assert records[-1]["i"] == flightrec.DEFAULT_LEN + 99
        assert records[0]["i"] == 100

    def test_disabled_note_records_nothing(self, obs_dir):
        previous = flightrec.set_enabled(False)
        try:
            flightrec.reset()
            flightrec.note("test.gone")
            assert flightrec.snapshot() == []
        finally:
            flightrec.set_enabled(previous)

    def test_emit_mirrors_into_ring_exactly_once(self, flight_on):
        metrics.set_enabled(True)
        try:
            events.emit("test.mirrored", value=7)
        finally:
            metrics.set_enabled(False)
        mirrored = [
            r for r in flightrec.snapshot() if r["event"] == "test.mirrored"
        ]
        assert len(mirrored) == 1
        assert mirrored[0]["value"] == 7


class TestDump:
    def test_dump_writes_valid_jsonl(self, flight_on, tmp_path):
        flightrec.note("test.one", x=1)
        flightrec.note("test.two", weird=float("nan"))
        path = flightrec.dump(tmp_path / "flight.jsonl", reason="unit")
        lines = path.read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert records[0]["event"] == "flight.dump"
        assert records[0]["reason"] == "unit"
        assert records[0]["records"] == 2
        assert [r["event"] for r in records[1:]] == ["test.one", "test.two"]

    def test_dump_default_dir_honours_env(
        self, flight_on, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(flightrec.FLIGHT_DIR_ENV, str(tmp_path / "dumps"))
        flightrec.note("test.dir")
        path = flightrec.dump(reason="env")
        assert path.parent == tmp_path / "dumps"
        assert path.name.startswith(f"flight-{os.getpid()}-")

    def test_sigusr2_dumps(self, flight_on, tmp_path, monkeypatch):
        monkeypatch.setenv(flightrec.FLIGHT_DIR_ENV, str(tmp_path))
        flightrec.note("test.signal")
        flightrec.install()
        try:
            os.kill(os.getpid(), signal.SIGUSR2)
            dumps = list(tmp_path.glob("flight-*.jsonl"))
            assert len(dumps) == 1
            events_seen = [
                json.loads(line)["event"]
                for line in dumps[0].read_text().splitlines()
            ]
            assert "test.signal" in events_seen
        finally:
            flightrec.uninstall()

    def test_crash_hook_dumps_and_chains(
        self, flight_on, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(flightrec.FLIGHT_DIR_ENV, str(tmp_path))
        chained = []
        previous_hook = sys.excepthook
        sys.excepthook = lambda *exc: chained.append(exc)
        try:
            flightrec.install(sigusr2=False)
            try:
                raise ValueError("boom")
            except ValueError:
                sys.excepthook(*sys.exc_info())
            finally:
                flightrec.uninstall()
        finally:
            sys.excepthook = previous_hook
        assert len(chained) == 1  # previous hook still ran
        dumps = list(tmp_path.glob("flight-*.jsonl"))
        assert len(dumps) == 1
        records = [
            json.loads(line) for line in dumps[0].read_text().splitlines()
        ]
        assert records[0]["reason"] == "crash"
        crash = [r for r in records if r["event"] == "flight.crash"]
        assert crash and "ValueError: boom" in crash[0]["error"]

    def test_install_is_idempotent_and_uninstall_restores(self, flight_on):
        hook_before = sys.excepthook
        flightrec.install(sigusr2=False)
        flightrec.install(sigusr2=False)  # second call: no re-chain
        assert sys.excepthook is not hook_before
        flightrec.uninstall()
        assert sys.excepthook is hook_before


class TestEngineEvents:
    def test_engine_lifecycle_lands_in_ring_with_obs_off(self, flight_on):
        from repro.sim.batch import RunSpec, run_one

        assert not metrics.enabled()
        run_one(RunSpec("gzip", "none", instructions=1_000))
        names = [r["event"] for r in flightrec.snapshot()]
        assert "engine.run.start" in names
        assert "engine.run.complete" in names
