"""RC network construction."""

import numpy as np
import pytest

from repro.errors import ThermalModelError
from repro.floorplan import Block, Floorplan
from repro.thermal import ThermalPackage, build_thermal_network
from repro.thermal.rc_model import SINK_NODE, SPREADER_NODE


@pytest.fixture(scope="module")
def network():
    fp = Floorplan(
        [Block("a", 0, 0, 1e-3, 1e-3), Block("b", 1e-3, 0, 1e-3, 1e-3)]
    )
    return build_thermal_network(fp, ThermalPackage())


class TestStructure:
    def test_node_ordering(self, network):
        assert network.node_names == ("a", "b", SPREADER_NODE, SINK_NODE)
        assert network.block_names == ("a", "b")
        assert network.size == 4

    def test_conductance_matrix_is_symmetric(self, network):
        assert np.allclose(network.conductance, network.conductance.T)

    def test_adjacent_blocks_are_coupled(self, network):
        i, j = network.index_of("a"), network.index_of("b")
        assert network.conductance[i, j] < 0.0

    def test_blocks_couple_to_spreader_not_sink(self, network):
        i = network.index_of("a")
        assert network.conductance[i, network.index_of(SPREADER_NODE)] < 0.0
        assert network.conductance[i, network.index_of(SINK_NODE)] == 0.0

    def test_only_sink_touches_ambient(self, network):
        sink = network.index_of(SINK_NODE)
        assert network.ambient_conductance[sink] == pytest.approx(1.0)
        others = np.delete(network.ambient_conductance, sink)
        assert np.all(others == 0.0)

    def test_row_sums_zero_except_sink(self, network):
        # Internal Laplacian property: conductance leaves the network only
        # through the sink's ambient term.
        sums = network.conductance.sum(axis=1)
        sink = network.index_of(SINK_NODE)
        for i, total in enumerate(sums):
            if i == sink:
                assert total == pytest.approx(network.ambient_conductance[sink])
            else:
                assert total == pytest.approx(0.0, abs=1e-9)

    def test_capacitances_positive(self, network):
        assert np.all(network.capacitance > 0.0)

    def test_index_of_unknown_raises(self, network):
        with pytest.raises(ThermalModelError):
            network.index_of("missing")


class TestPowerVector:
    def test_assembles_in_node_order(self, network):
        vec = network.power_vector({"a": 1.0, "b": 2.0})
        assert vec.tolist() == [1.0, 2.0, 0.0, 0.0]

    def test_missing_block_raises(self, network):
        with pytest.raises(ThermalModelError) as err:
            network.power_vector({"a": 1.0})
        assert "missing" in str(err.value)

    def test_unknown_block_raises(self, network):
        with pytest.raises(ThermalModelError):
            network.power_vector({"a": 1.0, "b": 2.0, "zz": 3.0})

    def test_negative_power_raises(self, network):
        with pytest.raises(ThermalModelError):
            network.power_vector({"a": -1.0, "b": 2.0})


class TestTemperatureMapping:
    def test_round_trip(self, network):
        temps = np.array([80.0, 81.0, 70.0, 60.0])
        mapping = network.temperatures_as_mapping(temps)
        assert mapping["a"] == 80.0
        assert mapping[SINK_NODE] == 60.0

    def test_wrong_shape_raises(self, network):
        with pytest.raises(ThermalModelError):
            network.temperatures_as_mapping(np.zeros(3))


def test_disjoint_blocks_have_no_direct_coupling():
    fp = Floorplan(
        [Block("a", 0, 0, 1e-3, 1e-3), Block("b", 5e-3, 0, 1e-3, 1e-3)]
    )
    network = build_thermal_network(fp, ThermalPackage())
    assert network.conductance[0, 1] == 0.0
