"""The HTTP facade: every endpoint against fake providers.

``ObsHttpd`` takes provider callables, so these tests stand up a real
server on an ephemeral port with stub providers and assert the routing,
status codes and content types without any service running behind it.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs import flightrec
from repro.obs.httpd import PROMETHEUS_CONTENT_TYPE, ObsHttpd


def _get(address, path):
    """GET http://<address><path> -> (status, content_type, body_bytes)."""
    url = f"http://{address}{path}"
    try:
        with urllib.request.urlopen(url, timeout=5.0) as response:
            return (
                response.status,
                response.headers.get("Content-Type"),
                response.read(),
            )
    except urllib.error.HTTPError as err:
        return err.code, err.headers.get("Content-Type"), err.read()


@pytest.fixture
def facade():
    """A running facade with deterministic fake providers."""
    state = {"ready": True, "detail": {"draining": False}}
    jobs = [
        {"digest": "abc123", "state": "running", "percent": 40.0},
        {"digest": "def456", "state": "queued", "percent": None},
    ]
    by_digest = {job["digest"]: job for job in jobs}
    httpd = ObsHttpd(
        "127.0.0.1",
        0,
        metrics_provider=lambda: "# HELP x x\nx 1.0\n",
        health_provider=lambda: {"ok": True, "pid": 42},
        ready_provider=lambda: (state["ready"], dict(state["detail"])),
        jobs_provider=lambda: list(jobs),
        job_provider=by_digest.get,
        flight_provider=lambda: [{"event": "test.a"}, {"event": "test.b"}],
    )
    address = httpd.start()
    try:
        yield address, state
    finally:
        httpd.stop()


class TestEndpoints:
    def test_metrics_passthrough_and_content_type(self, facade):
        address, _ = facade
        status, ctype, body = _get(address, "/metrics")
        assert status == 200
        assert ctype == PROMETHEUS_CONTENT_TYPE
        assert body == b"# HELP x x\nx 1.0\n"

    def test_healthz(self, facade):
        address, _ = facade
        status, ctype, body = _get(address, "/healthz")
        assert status == 200
        assert ctype == "application/json"
        assert json.loads(body) == {"ok": True, "pid": 42}

    def test_readyz_flips_with_provider(self, facade):
        address, state = facade
        status, _, body = _get(address, "/readyz")
        assert status == 200
        assert json.loads(body)["ready"] is True

        state["ready"] = False
        state["detail"] = {"draining": True}
        status, _, body = _get(address, "/readyz")
        assert status == 503
        payload = json.loads(body)
        assert payload["ready"] is False
        assert payload["draining"] is True

    def test_jobs_list(self, facade):
        address, _ = facade
        status, _, body = _get(address, "/jobs")
        assert status == 200
        payload = json.loads(body)
        assert [j["digest"] for j in payload["jobs"]] == ["abc123", "def456"]

    def test_job_by_digest_and_miss(self, facade):
        address, _ = facade
        status, _, body = _get(address, "/jobs/abc123")
        assert status == 200
        assert json.loads(body)["percent"] == 40.0

        status, _, body = _get(address, "/jobs/nope")
        assert status == 404
        assert "nope" in json.loads(body)["error"]

    def test_flight_is_ndjson(self, facade):
        address, _ = facade
        status, ctype, body = _get(address, "/flight")
        assert status == 200
        assert ctype == "application/x-ndjson"
        records = [json.loads(line) for line in body.splitlines()]
        assert [r["event"] for r in records] == ["test.a", "test.b"]

    def test_unknown_route_404(self, facade):
        address, _ = facade
        status, _, _ = _get(address, "/nope")
        assert status == 404

    def test_trailing_slash_and_query_are_tolerated(self, facade):
        address, _ = facade
        status, _, _ = _get(address, "/healthz/?probe=1")
        assert status == 200

    def test_write_verbs_rejected(self, facade):
        address, _ = facade
        request = urllib.request.Request(
            f"http://{address}/metrics", data=b"x", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5.0)
        assert excinfo.value.code == 405


class TestLifecycle:
    def test_ephemeral_port_and_stop(self):
        httpd = ObsHttpd("127.0.0.1", 0)
        address = httpd.start()
        host, port = address.rsplit(":", 1)
        assert host == "127.0.0.1"
        assert int(port) > 0
        assert httpd.address == address
        httpd.stop()
        with pytest.raises(OSError):
            urllib.request.urlopen(f"http://{address}/healthz", timeout=1.0)

    def test_default_flight_provider_reads_ring(self, obs_dir):
        previous = flightrec.set_enabled(True)
        flightrec.reset()
        httpd = ObsHttpd("127.0.0.1", 0)
        address = httpd.start()
        try:
            flightrec.note("test.live")
            _, _, body = _get(address, "/flight")
            events = [json.loads(l)["event"] for l in body.splitlines()]
            assert "test.live" in events
        finally:
            httpd.stop()
            flightrec.set_enabled(previous)
            flightrec.reset()
