"""Quickstart: protect one hot benchmark with hybrid DTM.

Runs gzip with no DTM (thermal violations allowed) and under the paper's
controller-free hybrid technique, then reports the temperatures, the
protection achieved, and the performance cost.

Run:  python examples/quickstart.py
"""

from repro import NoDtmPolicy, SimulationEngine, build_benchmark, make_policy
from repro.core import slowdown_factor

INSTRUCTIONS = 10_000_000
SETTLE_S = 2.0e-3  # policy-active lead-in before measurement


def main() -> None:
    workload = build_benchmark("gzip")
    print(f"workload: {workload!r}")
    print(f"  {workload.description}")

    # Baseline: no DTM.  Initial temperatures are the workload's
    # steady state, the paper's warmup protocol.
    baseline_engine = SimulationEngine(workload, policy=NoDtmPolicy())
    initial = baseline_engine.compute_initial_temperatures()
    baseline = baseline_engine.run(
        INSTRUCTIONS, initial=initial.copy(), settle_time_s=SETTLE_S
    )
    print("\nwithout DTM:")
    print(f"  hottest block:      {baseline.hottest_block}")
    print(f"  max temperature:    {baseline.max_true_temp_c:.2f} C")
    print(f"  time above trigger: {baseline.fraction_above_trigger:.0%}")
    print(f"  violations (>85C):  {baseline.violations} thermal steps")

    # The paper's contribution: fixed fetch gating at the crossover duty
    # cycle between two thresholds, binary DVS above the second.
    engine = SimulationEngine(workload, policy=make_policy("Hyb"))
    run = engine.run(
        INSTRUCTIONS, initial=initial.copy(), settle_time_s=SETTLE_S
    )
    slowdown = slowdown_factor(run, baseline)
    print("\nwith hybrid DTM (Hyb):")
    print(f"  max temperature:    {run.max_true_temp_c:.2f} C")
    print(f"  violations (>85C):  {run.violations} thermal steps")
    print(f"  DVS switches:       {run.dvs_switches}")
    print(f"  mean fetch gating:  {run.mean_gating_fraction:.3f}")
    print(f"  slowdown factor:    {slowdown:.4f} "
          f"({(slowdown - 1) * 100:.2f}% DTM overhead)")


if __name__ == "__main__":
    main()
