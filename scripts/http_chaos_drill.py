#!/usr/bin/env python
"""CI chaos drill for the live observability plane.

Boots a real ``python -m repro serve --http 127.0.0.1:0`` subprocess,
submits a slow sweep, and asserts mid-flight:

* ``/healthz`` and ``/metrics`` answer 200 (with the continuously
  refreshed service gauges present);
* ``/jobs`` lists the running job and ``/jobs/<digest>`` reports a
  monotonically increasing percent-complete fed by the engine's
  heartbeats;
* SIGUSR2 dumps the flight-recorder ring to ``REPRO_FLIGHT_DIR`` as
  valid JSONL carrying the recent service events;
* after a ``drain`` request with the job still in flight, ``/readyz``
  flips to 503 with ``draining: true``;
* the drain then completes normally: the submission resolves, the
  server exits 0.

Run from the repo root: ``python scripts/http_chaos_drill.py``.  The
flight dump directory (default ``flight-ci``) is left behind for CI to
upload as an artifact.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SOCK = "http-chaos.sock"
CACHE = "http-chaos-cache"
FLIGHT_DIR = Path(os.environ.get("REPRO_FLIGHT_DIR", "flight-ci"))
# Wide enough to probe/drain mid-run on a CI box (a few seconds).
SLOW = {"benchmark": "art", "policy": "FG", "instructions": 4_000_000_000}


def get(address: str, path: str, timeout: float = 5.0):
    """GET the facade; returns (status, body-bytes)."""
    try:
        with urllib.request.urlopen(
            f"http://{address}{path}", timeout=timeout
        ) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as err:
        return err.code, err.read()


def main() -> int:
    sys.path.insert(0, str(ROOT / "src"))
    from repro.service import protocol
    from repro.service.client import ServiceClient
    from repro.sim.supervisor import spec_digest

    env = dict(os.environ)
    env["REPRO_FLIGHT_DIR"] = str(FLIGHT_DIR)
    env.setdefault("PYTHONPATH", str(ROOT / "src"))
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--socket", SOCK, "--cache-dir", CACHE,
         "--http", "127.0.0.1:0"],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    http_address = None
    try:
        # The serve CLI prints both addresses, flushed, at startup.
        deadline = time.monotonic() + 60.0
        while http_address is None:
            assert time.monotonic() < deadline, "no http address printed"
            assert proc.poll() is None, "server died on startup"
            line = proc.stdout.readline()
            print(f"  server: {line.rstrip()}")
            if line.startswith("observability http on "):
                http_address = line.split()[-1]

        status, _ = get(http_address, "/healthz")
        assert status == 200, f"/healthz pre-run: {status}"
        status, _ = get(http_address, "/readyz")
        assert status == 200, f"/readyz pre-run: {status}"

        # Build the spec exactly as the server will, so digests agree.
        digest = spec_digest(protocol.spec_from_wire(SLOW))
        outcomes = []

        def submit():
            with ServiceClient(SOCK, timeout=300.0) as client:
                outcomes.extend(client.submit([SLOW], timeout_s=300.0))

        worker = threading.Thread(target=submit, daemon=True)
        worker.start()

        # Mid-sweep scrapes: running job visible, percent climbing.
        percents = []
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            status, body = get(http_address, f"/jobs/{digest}")
            if status == 200:
                entry = json.loads(body)
                if entry["state"] == "running" and entry.get("percent"):
                    percents.append(float(entry["percent"]))
                if len(percents) >= 3 and len(set(percents)) >= 2:
                    break
            time.sleep(0.1)
        assert len(percents) >= 3, f"no live progress observed: {percents}"
        assert percents == sorted(percents), f"regressed: {percents}"
        assert percents[-1] < 100.0, "probe never caught the job mid-run"
        print(f"  live percents: {[round(p, 1) for p in percents]}")

        status, body = get(http_address, "/jobs")
        assert status == 200
        assert digest in {j["digest"] for j in json.loads(body)["jobs"]}

        status, body = get(http_address, "/metrics")
        assert status == 200
        text = body.decode()
        for needed in ("repro_service_inflight_jobs 1",
                       "repro_service_queue_depth",
                       "repro_service_cache_hit_rate"):
            assert needed in text, f"missing {needed!r} in /metrics"

        # Flight dump on SIGUSR2, mid-run.
        proc.send_signal(signal.SIGUSR2)
        deadline = time.monotonic() + 30.0
        dumps = []
        while not dumps and time.monotonic() < deadline:
            dumps = sorted(FLIGHT_DIR.glob("flight-*.jsonl"))
            time.sleep(0.1)
        assert dumps, "SIGUSR2 produced no flight dump"
        records = [
            json.loads(line)
            for line in dumps[0].read_text().splitlines()
        ]
        assert records[0]["event"] == "flight.dump"
        assert records[0]["reason"] == "sigusr2"
        events_seen = {r["event"] for r in records}
        assert "service.run_start" in events_seen, sorted(events_seen)
        print(f"  flight dump: {dumps[0]} ({len(records)} records)")

        # Drain with the job still in flight: readiness must flip 503.
        with ServiceClient(SOCK, timeout=30.0) as client:
            client.drain()
        status, body = get(http_address, "/readyz")
        assert status == 503, f"/readyz during drain: {status}"
        payload = json.loads(body)
        assert payload["ready"] is False and payload["draining"] is True

        worker.join(timeout=300.0)
        assert not worker.is_alive(), "submission never resolved"
        assert outcomes and outcomes[0].ok, outcomes

        code = proc.wait(timeout=120.0)
        assert code == 0, f"server exited {code} after drain"
        proc = None
        print("http chaos drill: live progress, mid-sweep scrapes, "
              "SIGUSR2 flight dump and drain readiness all held")
        return 0
    finally:
        if proc is not None and proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30.0)


if __name__ == "__main__":
    sys.exit(main())
