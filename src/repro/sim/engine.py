"""The coupled simulation engine."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.dtm.base import DtmCommand, DtmPolicy
from repro.dtm.none import NoDtmPolicy
from repro.dtm.thresholds import ThermalThresholds
from repro.errors import SimulationError, ThermalViolationError
from repro.floorplan.alpha21364 import build_alpha21364_floorplan
from repro.floorplan.floorplan import Floorplan
from repro.power.model import PowerModel
from repro.sensors.array import SensorArray
from repro.sim.config import DVS_MODE_IDEAL, DVS_MODE_STALL, EngineConfig
from repro.sim.results import RunResult, TracePoint
from repro.sim.warmup import initial_temperatures
from repro.thermal.hotspot import HotSpotModel
from repro.thermal.package import ThermalPackage
from repro.uarch.interval import DtmActuation, IntervalPerformanceModel
from repro.workloads.workload import Workload


class SimulationEngine:
    """Runs one workload under one DTM policy.

    All substrate objects can be injected for experiments; the defaults
    reproduce the paper's setup (Alpha 21364 floorplan, low-cost package,
    Alpha power budget, 10 kHz noisy sensors).
    """

    def __init__(
        self,
        workload: Workload,
        policy: Optional[DtmPolicy] = None,
        floorplan: Optional[Floorplan] = None,
        package: Optional[ThermalPackage] = None,
        power_model: Optional[PowerModel] = None,
        sensors: Optional[SensorArray] = None,
        thresholds: Optional[ThermalThresholds] = None,
        config: Optional[EngineConfig] = None,
        seed: int = 0,
    ):
        self._workload = workload
        self._floorplan = (
            floorplan if floorplan is not None else build_alpha21364_floorplan()
        )
        self._hotspot = HotSpotModel(self._floorplan, package)
        self._power = (
            power_model if power_model is not None else PowerModel(self._floorplan)
        )
        self._sensors = (
            sensors
            if sensors is not None
            else SensorArray(self._floorplan, seed=seed)
        )
        self._policy = policy if policy is not None else NoDtmPolicy(
            self._power.technology.vdd_nominal
        )
        self._thresholds = (
            thresholds if thresholds is not None else ThermalThresholds()
        )
        self._config = config if config is not None else EngineConfig()
        self._tech = self._power.technology
        self._vf = self._power.vf_curve

    @property
    def workload(self) -> Workload:
        """The workload under simulation."""
        return self._workload

    @property
    def hotspot(self) -> HotSpotModel:
        """The thermal model."""
        return self._hotspot

    @property
    def power_model(self) -> PowerModel:
        """The power model."""
        return self._power

    @property
    def policy(self) -> DtmPolicy:
        """The DTM policy under test."""
        return self._policy

    @property
    def config(self) -> EngineConfig:
        """Engine configuration."""
        return self._config

    def compute_initial_temperatures(self) -> np.ndarray:
        """No-DTM steady-state node temperatures for this workload."""
        return initial_temperatures(self._workload, self._hotspot, self._power)

    # --- main loop ---------------------------------------------------------------

    def run(
        self,
        instructions: int,
        initial: Optional[np.ndarray] = None,
        settle_time_s: float = 0.0,
    ) -> RunResult:
        """Simulate until ``instructions`` have committed.

        Parameters
        ----------
        instructions:
            Commit budget; the run's elapsed time is interpolated within
            the final step so slowdown comparisons are exact.
        initial:
            Node temperature vector to start from; defaults to the
            workload's no-DTM steady state.
        settle_time_s:
            Length of an unmeasured lead-in with the policy active,
            standing in for the tail of the paper's 300 M-cycle warmup:
            statistics (including violations) start once the policy has
            pulled the chip from its unmanaged steady state into the
            regulated band.
        """
        if instructions <= 0:
            raise SimulationError("instruction budget must be > 0")
        if settle_time_s < 0.0:
            raise SimulationError("settle time must be >= 0")
        if initial is None:
            initial = self.compute_initial_temperatures()
        network = self._hotspot.network
        solver_temps = np.array(initial, dtype=float, copy=True)
        from repro.thermal.solver import TransientSolver

        solver = TransientSolver(network, solver_temps)
        perf = IntervalPerformanceModel(self._workload.phases, loop=True)
        self._policy.reset()

        block_names = list(network.block_names)
        hot_block_index = {name: network.index_of(name) for name in block_names}

        nominal_v = self._tech.vdd_nominal
        command = DtmCommand(gating_fraction=0.0, voltage=nominal_v)
        voltage = nominal_v
        frequency = self._tech.frequency_nominal
        pending_voltage: Optional[float] = None
        pending_effective_s = 0.0

        time_s = 0.0
        measure_start_s = 0.0
        measuring = settle_time_s == 0.0
        done = 0.0
        cycles = 0
        violations = 0
        max_temp = -1e9
        hottest_block = block_names[0]
        above_trigger_s = 0.0
        switches = 0
        migrations = 0
        previous_migration = None
        low_time_s = 0.0
        stall_s = 0.0
        gating_time_weighted = 0.0
        energy_j = 0.0
        trace = [] if self._config.record_trace else None

        step_cycles = self._config.thermal_step_cycles
        switch_time = self._config.dvs_switch_time_s
        stall_mode = self._config.dvs_mode == DVS_MODE_STALL

        def temps_mapping() -> Dict[str, float]:
            current = solver.temperatures
            return {name: current[hot_block_index[name]] for name in block_names}

        def idle_powers(temps: Dict[str, float]) -> Dict[str, float]:
            zero = {name: 0.0 for name in block_names}
            return self._power.block_powers(zero, voltage, frequency, temps)

        while done < instructions:
            temps = temps_mapping()

            # --- sensing and policy -------------------------------------------
            if self._sensors.due(time_s):
                readings = self._sensors.sample(temps, time_s)
                new_command = self._policy.update(
                    readings, time_s, self._sensors.sampling_period_s
                )
                if abs(new_command.voltage - voltage) > 1e-12 and (
                    pending_voltage is None
                    or abs(new_command.voltage - pending_voltage) > 1e-12
                ):
                    if measuring:
                        switches += 1
                    if stall_mode:
                        if switch_time > 0.0:
                            power = idle_powers(temps)
                            solver.step(network.power_vector(power), switch_time)
                            time_s += switch_time
                            if measuring:
                                stall_s += switch_time
                            temps = temps_mapping()
                        voltage = new_command.voltage
                        frequency = self._vf.frequency(voltage)
                        pending_voltage = None
                    else:
                        pending_voltage = new_command.voltage
                        pending_effective_s = time_s + switch_time
                command = new_command

            if pending_voltage is not None and time_s >= pending_effective_s:
                voltage = pending_voltage
                frequency = self._vf.frequency(voltage)
                pending_voltage = None

            # --- activity-migration transitions --------------------------------
            if command.migration != previous_migration:
                previous_migration = command.migration
                if measuring:
                    migrations += 1
                if self._config.migration_time_s > 0.0:
                    power = idle_powers(temps)
                    solver.step(
                        network.power_vector(power),
                        self._config.migration_time_s,
                    )
                    time_s += self._config.migration_time_s
                    if measuring:
                        stall_s += self._config.migration_time_s
                    temps = temps_mapping()

            # --- one thermal step of execution --------------------------------
            f_rel = frequency / self._tech.frequency_nominal
            actuation = DtmActuation(
                gating_fraction=command.gating_fraction,
                relative_frequency=f_rel,
                clock_enabled_fraction=command.clock_enabled_fraction,
                domain_gating=command.domain_gating,
            )
            sample = perf.advance(step_cycles, actuation)
            dt = step_cycles / frequency

            if command.domain_gating:
                from repro.dtm.domains import CLOCK_DOMAINS

                clock_gate = {
                    block: command.clock_enabled_fraction * (1.0 - duty)
                    for domain, duty in command.domain_gating.items()
                    for block in CLOCK_DOMAINS[domain]
                }
            else:
                clock_gate = command.clock_enabled_fraction

            activities = dict(sample.activities)
            for name in block_names:
                activities.setdefault(name, 0.0)  # e.g. spare structures
            if command.migration is not None:
                source, target, fraction = command.migration
                moved = activities.get(source, 0.0) * fraction
                activities[source] = activities.get(source, 0.0) - moved
                activities[target] = min(
                    1.0, activities.get(target, 0.0) + moved
                )
            powers = self._power.block_powers(
                activities,
                voltage,
                frequency,
                temps,
                clock_gate,
            )
            solver.step(network.power_vector(powers), dt)

            # --- accounting ----------------------------------------------------
            new_temps = solver.temperatures
            step_hottest = max(block_names, key=lambda n: new_temps[hot_block_index[n]])
            step_max = new_temps[hot_block_index[step_hottest]]
            if measuring:
                remaining = instructions - done
                if sample.instructions >= remaining:
                    # Interpolate the final partial step for exact elapsed
                    # time.
                    fraction = remaining / sample.instructions
                    dt_measured = dt * fraction
                    cycles += int(step_cycles * fraction)
                    done = instructions
                else:
                    dt_measured = dt
                    cycles += step_cycles
                    done += sample.instructions
                time_s += dt_measured

                if step_max > max_temp:
                    max_temp = step_max
                    hottest_block = step_hottest
                if step_max > self._thresholds.emergency_c:
                    violations += 1
                    if self._config.raise_on_violation:
                        raise ThermalViolationError(
                            step_max,
                            self._thresholds.emergency_c,
                            time_s,
                            step_hottest,
                        )
                if step_max > self._thresholds.trigger_c:
                    above_trigger_s += dt_measured
                if voltage < nominal_v - 1e-12:
                    low_time_s += dt_measured
                gating_time_weighted += command.gating_fraction * dt_measured
                energy_j += sum(powers.values()) * dt_measured
            else:
                time_s += dt
                if time_s >= settle_time_s:
                    measuring = True
                    measure_start_s = time_s
                    # Measure the same instruction window for every
                    # technique (the paper's fixed SimPoint sample): the
                    # settle lead-in warms the *thermal* state only.
                    perf = IntervalPerformanceModel(
                        self._workload.phases, loop=True
                    )

            if trace is not None:
                trace.append(
                    TracePoint(
                        time_s=time_s,
                        hottest_block=step_hottest,
                        hottest_temp_c=step_max,
                        gating_fraction=command.gating_fraction,
                        voltage=voltage,
                        clock_enabled_fraction=command.clock_enabled_fraction,
                        instructions=done,
                    )
                )

        elapsed_s = time_s - measure_start_s
        return RunResult(
            benchmark=self._workload.name,
            policy=self._policy.name,
            dvs_mode=self._config.dvs_mode,
            instructions=done,
            elapsed_s=elapsed_s,
            cycles=cycles,
            violations=violations,
            max_true_temp_c=max_temp,
            hottest_block=hottest_block,
            time_above_trigger_s=above_trigger_s,
            dvs_switches=switches,
            dvs_low_time_s=low_time_s,
            stall_time_s=stall_s,
            mean_gating_fraction=gating_time_weighted / max(elapsed_s, 1e-12),
            mean_power_w=energy_j / max(elapsed_s, 1e-12),
            migrations=migrations,
            trace=trace,
        )
