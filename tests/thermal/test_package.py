"""Thermal package."""

import pytest

from repro.errors import ThermalModelError
from repro.thermal import ThermalPackage, default_package
from repro.units import MM


def test_default_matches_paper_setup():
    pkg = default_package()
    assert pkg.die_thickness == pytest.approx(0.5 * MM)
    assert pkg.convection_resistance == pytest.approx(1.0)  # low-cost package
    assert pkg.ambient_c == pytest.approx(45.0)


def test_rejects_non_positive_parameters():
    with pytest.raises(ThermalModelError):
        ThermalPackage(die_thickness=0.0)
    with pytest.raises(ThermalModelError):
        ThermalPackage(convection_resistance=-1.0)


def test_rejects_sink_smaller_than_spreader():
    with pytest.raises(ThermalModelError):
        ThermalPackage(spreader_side=60.0 * MM, sink_side=30.0 * MM)


def test_vertical_resistance_decreases_with_block_area():
    pkg = default_package()
    small = pkg.block_vertical_resistance(1e-6)
    large = pkg.block_vertical_resistance(4e-6)
    assert small > large
    # Pure 1-D conduction scales exactly inversely with area.
    assert small == pytest.approx(4.0 * large)


def test_vertical_resistance_magnitude():
    # For a 4.18 mm^2 block (IntReg): die + TIM + half spreader,
    # a few K/W.
    pkg = default_package()
    r = pkg.block_vertical_resistance(4.18e-6)
    assert 1.0 < r < 5.0


def test_spreader_to_sink_resistance_is_small_vs_convection():
    pkg = default_package()
    r = pkg.spreader_to_sink_resistance((16 * MM) ** 2)
    assert r < 0.2 * pkg.convection_resistance


def test_lateral_resistance_formula():
    pkg = default_package()
    r = pkg.lateral_resistance(2e-3, 1e-3)
    expected = 2e-3 / (100.0 * pkg.die_thickness * 1e-3)
    assert r == pytest.approx(expected)


def test_lateral_resistance_rejects_bad_geometry():
    pkg = default_package()
    with pytest.raises(ThermalModelError):
        pkg.lateral_resistance(0.0, 1e-3)
    with pytest.raises(ThermalModelError):
        pkg.lateral_resistance(1e-3, 0.0)


def test_block_capacitance_uses_lumping_factor():
    pkg = default_package()
    full_slab = 1.75e6 * 4.18e-6 * pkg.die_thickness
    assert pkg.block_capacitance(4.18e-6) == pytest.approx(
        pkg.die_capacitance_factor * full_slab
    )


def test_sink_capacitance_dwarfs_block_capacitance():
    # This is why "the heat sink temperature changes little" over a run.
    pkg = default_package()
    assert pkg.sink_capacitance > 1e3 * pkg.block_capacitance(4.18e-6)
