"""Phase detection from interval traces."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import make_activity_profile
from repro.workloads.phase_detection import (
    IntervalRecord,
    detect_phases,
    workload_from_trace,
)

HOT = make_activity_profile(0.85, 0.05, 0.6, 0.75, 0.2)
COOL = make_activity_profile(0.35, 0.05, 0.3, 0.35, 0.1)


def synthetic_trace(pattern="HHHHCCCC", wobble=0.01):
    """Alternating hot/cool intervals with a deterministic wobble."""
    records = []
    for i, kind in enumerate(pattern):
        base = HOT if kind == "H" else COOL
        jitter = ((i * 37) % 7 - 3) * wobble / 3.0
        activities = {
            block: min(1.0, max(0.0, value + jitter))
            for block, value in base.items()
        }
        records.append(
            IntervalRecord(
                instructions=100_000,
                ipc=2.2 if kind == "H" else 1.4,
                activities=activities,
            )
        )
    return records


class TestIntervalRecord:
    def test_rejects_empty_activities(self):
        with pytest.raises(WorkloadError):
            IntervalRecord(instructions=100, ipc=1.0, activities={})

    def test_rejects_non_positive_work(self):
        with pytest.raises(WorkloadError):
            IntervalRecord(instructions=0, ipc=1.0, activities={"a": 0.5})
        with pytest.raises(WorkloadError):
            IntervalRecord(instructions=10, ipc=0.0, activities={"a": 0.5})


class TestDetection:
    def test_recovers_two_phases(self):
        phases = detect_phases(synthetic_trace(), max_phases=2)
        assert len(phases) == 2
        ipcs = sorted(p.base_ipc for p in phases)
        assert ipcs[0] == pytest.approx(1.4, rel=0.05)
        assert ipcs[1] == pytest.approx(2.2, rel=0.05)

    def test_phase_activities_match_cluster_means(self):
        phases = detect_phases(synthetic_trace(), max_phases=2)
        hot_phase = max(phases, key=lambda p: p.base_ipc)
        assert hot_phase.base_activities["IntReg"] == pytest.approx(
            HOT["IntReg"], abs=0.03
        )

    def test_instruction_totals_conserved(self):
        trace = synthetic_trace("HHHCC")
        phases = detect_phases(trace, max_phases=2)
        assert sum(p.instructions for p in phases) == 5 * 100_000

    def test_phases_ordered_by_first_appearance(self):
        phases = detect_phases(synthetic_trace("CCHH"), max_phases=2)
        assert phases[0].base_ipc < phases[1].base_ipc  # cool seen first

    def test_deterministic_across_calls(self):
        a = detect_phases(synthetic_trace(), max_phases=2, seed=3)
        b = detect_phases(synthetic_trace(), max_phases=2, seed=3)
        assert [p.base_ipc for p in a] == [p.base_ipc for p in b]

    def test_single_cluster_when_uniform(self):
        phases = detect_phases(synthetic_trace("HHHH", wobble=0.0),
                               max_phases=3)
        assert len(phases) >= 1
        total = sum(p.instructions for p in phases)
        assert total == 4 * 100_000

    def test_rejects_empty_trace(self):
        with pytest.raises(WorkloadError):
            detect_phases([])

    def test_rejects_inconsistent_block_sets(self):
        records = synthetic_trace("HH")
        bad = IntervalRecord(
            instructions=100_000, ipc=2.0, activities={"IntReg": 0.5}
        )
        with pytest.raises(WorkloadError):
            detect_phases(records + [bad])


class TestWorkloadFromTrace:
    def test_builds_runnable_workload(self):
        workload = workload_from_trace("traced", synthetic_trace(),
                                       max_phases=2)
        assert workload.name == "traced"
        assert workload.total_instructions == 8 * 100_000

        from repro.dtm import HybPolicy
        from repro.sim import SimulationEngine

        engine = SimulationEngine(workload, policy=HybPolicy())
        run = engine.run(500_000, settle_time_s=1e-3)
        assert run.instructions == 500_000

    def test_round_trip_from_detailed_core(self):
        # Characterise a real detailed-core run into interval records and
        # rebuild a workload: the whole tooling chain end to end.
        from repro.uarch import DetailedCore
        from repro.uarch.trace import TraceParameters

        params = TraceParameters(
            working_set_bytes=64 * 1024, sequential_fraction=0.8,
            dep_distance_mean=10.0, branch_predictability=0.95,
        )
        core = DetailedCore.warmed(params, seed=1)
        records = []
        for _ in range(4):
            core.reset_statistics()
            result = core.run(max_cycles=4_000)
            records.append(
                IntervalRecord(
                    instructions=max(result.instructions, 1),
                    ipc=max(result.ipc, 0.1),
                    activities=result.activities,
                )
            )
        workload = workload_from_trace("measured", records, max_phases=2)
        assert workload.total_instructions > 0
        assert 0.5 < workload.mean_ipc < 4.0
