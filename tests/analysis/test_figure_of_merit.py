"""A-priori cooling figure of merit."""

import pytest

from repro.analysis import cooling_figure_of_merit, predicted_crossover_gating
from repro.errors import ReproError
from repro.uarch.interval import DtmActuation
from repro.workloads import build_benchmark


@pytest.fixture(scope="module")
def phase():
    return build_benchmark("gzip").phases[0]


@pytest.fixture(scope="module")
def dvs_merit(phase, hotspot, power_model):
    ratio = power_model.vf_curve.relative_frequency(0.85 * 1.3)
    return cooling_figure_of_merit(
        phase, DtmActuation(relative_frequency=ratio), hotspot, power_model
    )


class TestCoolingPredictions:
    def test_nominal_actuation_neither_cools_nor_slows(
        self, phase, hotspot, power_model
    ):
        merit = cooling_figure_of_merit(
            phase, DtmActuation(), hotspot, power_model
        )
        assert merit.cooling_k == pytest.approx(0.0, abs=1e-9)
        assert merit.slowdown == pytest.approx(1.0)

    def test_dvs_cooling_matches_transient_authority(self, dvs_merit):
        # The die-level authority measured by full co-simulation is a few
        # kelvin; the Green's-function prediction must land in that range.
        assert 2.0 < dvs_merit.cooling_k < 6.0

    def test_dvs_slowdown_matches_frequency_model(self, dvs_merit, phase):
        expected_upper = 1.0 / 0.873
        assert 1.0 < dvs_merit.slowdown < expected_upper + 1e-6

    def test_deeper_gating_cools_more(self, phase, hotspot, power_model):
        mild = cooling_figure_of_merit(
            phase, DtmActuation(gating_fraction=0.1), hotspot, power_model
        )
        deep = cooling_figure_of_merit(
            phase, DtmActuation(gating_fraction=0.6), hotspot, power_model
        )
        assert deep.cooling_k > mild.cooling_k
        assert deep.slowdown > mild.slowdown

    def test_clock_gating_cools_and_stalls(self, phase, hotspot, power_model):
        merit = cooling_figure_of_merit(
            phase, DtmActuation(clock_enabled_fraction=0.7),
            hotspot, power_model,
        )
        assert merit.cooling_k > 0.5
        assert merit.slowdown == pytest.approx(1.0 / 0.7, rel=1e-6)

    def test_unknown_hotspot_block_rejected(self, phase, hotspot, power_model):
        with pytest.raises(ReproError):
            cooling_figure_of_merit(
                phase, DtmActuation(), hotspot, power_model,
                hotspot_block="nope",
            )


class TestMeritStructure:
    def test_mild_gating_has_highest_merit(
        self, phase, hotspot, power_model, dvs_merit
    ):
        # The paper's core insight, predicted without simulation: trimming
        # speculation is nearly free cooling.
        mild = cooling_figure_of_merit(
            phase, DtmActuation(gating_fraction=0.08), hotspot, power_model
        )
        assert mild.merit > dvs_merit.merit

    def test_deep_gating_merit_collapses_below_dvs(
        self, phase, hotspot, power_model, dvs_merit
    ):
        deep = cooling_figure_of_merit(
            phase, DtmActuation(gating_fraction=0.6), hotspot, power_model
        )
        assert deep.merit < dvs_merit.merit

    def test_zero_overhead_actuation_has_infinite_merit(self):
        from repro.analysis.figure_of_merit import CoolingMerit

        merit = CoolingMerit(
            actuation=DtmActuation(),
            hotspot_block="IntReg",
            cooling_k=1.0,
            slowdown=1.0,
        )
        assert merit.merit == float("inf")


class TestPredictedCrossover:
    def test_crossover_matches_simulated_sweep(self, phase, hotspot, power_model):
        # The simulated Figure 3a sweep bottoms out around duty 3-4
        # (gating fraction 0.25-0.33); the a-priori prediction must agree.
        fraction = predicted_crossover_gating(phase, hotspot, power_model)
        assert 0.15 < fraction < 0.45

    def test_crossover_insensitive_to_low_voltage(
        self, phase, hotspot, power_model
    ):
        # The paper's T3 finding, reproduced analytically.
        at_080 = predicted_crossover_gating(
            phase, hotspot, power_model, v_low_ratio=0.80
        )
        at_090 = predicted_crossover_gating(
            phase, hotspot, power_model, v_low_ratio=0.90
        )
        assert abs(at_080 - at_090) < 0.12

    def test_memory_bound_phase_has_weak_gating_authority(
        self, hotspot, power_model, phase
    ):
        # art's low IPC leaves huge fetch slack: gating is nearly free for
        # it, but it also cools very little -- the weak-authority regime
        # that forces art onto DVS in the violation experiments.
        art_phase = build_benchmark("art").phases[0]
        art = cooling_figure_of_merit(
            art_phase, DtmActuation(gating_fraction=0.5), hotspot, power_model
        )
        gzip = cooling_figure_of_merit(
            phase, DtmActuation(gating_fraction=0.5), hotspot, power_model
        )
        assert art.cooling_k < 0.4 * gzip.cooling_k
