"""Engine configuration."""

import pytest

from repro.errors import SimulationError
from repro.sim import EngineConfig


def test_defaults_match_paper():
    config = EngineConfig()
    assert config.thermal_step_cycles == 10_000
    assert config.dvs_switch_time_s == pytest.approx(10e-6)
    assert config.dvs_mode == "stall"


def test_ideal_mode_accepted():
    assert EngineConfig(dvs_mode="ideal").dvs_mode == "ideal"


def test_rejects_unknown_mode():
    with pytest.raises(SimulationError):
        EngineConfig(dvs_mode="free")


def test_rejects_tiny_thermal_step():
    with pytest.raises(SimulationError):
        EngineConfig(thermal_step_cycles=10)


def test_rejects_negative_switch_time():
    with pytest.raises(SimulationError):
        EngineConfig(dvs_switch_time_s=-1e-6)
