"""Conformance suite for the :class:`repro.sim.contract.SimEngine` contract.

One parametrized suite, three engines -- the single-core generator
engine, the BLAS-3 lockstep runner and the dual-core engine -- pinning
the guarantees the contract docstring promises: reset-reentrancy, seed
determinism, bit-identity of externally driven ``iter_run`` against
``run``, incremental ``build``/``step`` driving, the event channel, and
fault/guard behaviour.
"""

import numpy as np
import pytest

from repro.errors import NumericalError, SimulationError
from repro.multicore.engine import MultiCoreEngine
from repro.sim.batch import RunSpec
from repro.sim.config import EngineConfig
from repro.sim.contract import (
    EngineEvent,
    SimEngine,
    service_request,
    service_round,
)
from repro.sim.engine import SimulationEngine
from repro.sim.faults import FaultPlan
from repro.sim.lockstep import LockstepEngine
from repro.workloads.spec import build_benchmark

INSTRUCTIONS = 300_000
DURATION_S = 0.4e-3


def _single_core(config=None, seed=3):
    return (
        SimulationEngine(
            build_benchmark("crafty"),
            config=config if config is not None else EngineConfig(),
            seed=seed,
        ),
        INSTRUCTIONS,
    )


def _lockstep(config=None, seed=3):
    specs = [
        RunSpec(
            workload=name,
            instructions=INSTRUCTIONS,
            seed=seed + i,
            engine_config=config,
        )
        for i, name in enumerate(["crafty", "mesa"])
    ]
    return LockstepEngine(specs), None


def _multicore(config=None, seed=3):
    return (
        MultiCoreEngine(
            [build_benchmark("crafty"), build_benchmark("mesa")],
            config=config if config is not None else EngineConfig(),
            seed=seed,
        ),
        DURATION_S,
    )


FACTORIES = {
    "single-core": _single_core,
    "lockstep": _lockstep,
    "multicore": _multicore,
}


@pytest.fixture(params=sorted(FACTORIES), ids=sorted(FACTORIES))
def factory(request):
    return FACTORIES[request.param]


def canon(result):
    """A comparable (bit-exact) projection of any engine's result."""
    if isinstance(result, list):
        return [r.to_json_dict() for r in result]
    return result.to_json_dict()


class TestContractShape:
    def test_every_engine_implements_the_contract(self, factory):
        engine, _budget = factory()
        assert isinstance(engine, SimEngine)

    def test_run_equals_externally_driven_iter_run(self, factory):
        engine, budget = factory()
        reference = canon(engine.run(budget))
        engine.reset()
        generator = engine.iter_run(budget)
        reply = None
        while True:
            try:
                request = generator.send(reply)
            except StopIteration as stop:
                driven = canon(stop.value)
                break
            if isinstance(request, dict):
                reply = service_round(request)
            else:
                reply = service_request(request)
        assert driven == reference

    def test_build_step_matches_run(self, factory):
        engine, budget = factory()
        reference = canon(engine.run(budget))
        engine.reset()
        engine.build(budget)
        steps = 0
        while True:
            result = engine.step()
            if result is not None:
                break
            steps += 1
        assert steps > 0
        assert canon(result) == reference

    def test_step_without_build_raises(self, factory):
        engine, _budget = factory()
        with pytest.raises(SimulationError):
            engine.step()


class TestDeterminism:
    def test_reset_reentrancy(self, factory):
        engine, budget = factory()
        first = canon(engine.run(budget))
        engine.reset()
        second = canon(engine.run(budget))
        assert second == first

    def test_seed_determinism_across_fresh_engines(self, factory):
        engine_a, budget = factory()
        engine_b, _ = factory()
        assert canon(engine_a.run(budget)) == canon(engine_b.run(budget))

    def test_different_seeds_draw_different_sensor_noise(self, factory):
        # With no-DTM policies the physics is noise-independent, so
        # compare the observable seeded surface: the sensor offsets of
        # two fresh engines differ while two same-seed engines agree.
        engine_a, _ = factory(seed=3)
        if isinstance(engine_a, LockstepEngine):
            pytest.skip(
                "the lockstep engine owns no sensors; per-spec seeding "
                "is pinned by its own suite"
            )
        engine_b, _ = factory(seed=11)
        engine_c, _ = factory(seed=3)
        block = engine_a._sensors.block_names[0]
        assert engine_a._sensors.offset_of(block) != (
            engine_b._sensors.offset_of(block)
        )
        assert engine_a._sensors.offset_of(block) == (
            engine_c._sensors.offset_of(block)
        )


class TestEvents:
    def test_run_lifecycle_events(self, factory):
        engine, budget = factory()
        seen = []
        engine.subscribe(seen.append)
        engine.run(budget)
        names = [event.name for event in seen]
        assert names[0] == "run.start"
        assert names[-1] == "run.complete"
        assert all(isinstance(event, EngineEvent) for event in seen)

    def test_unsubscribe_stops_delivery(self, factory):
        engine, budget = factory()
        seen = []
        unsubscribe = engine.subscribe(seen.append)
        unsubscribe()
        engine.run(budget)
        assert seen == []

    def test_events_do_not_change_results(self, factory):
        engine, budget = factory()
        reference = canon(engine.run(budget))
        engine.reset()
        engine.subscribe(lambda event: None)
        assert canon(engine.run(budget)) == reference


class TestFaultConformance:
    """A poisoned power vector must trip the numerical guards on every
    engine (the lockstep runner surfaces it per-run; see its suite)."""

    # Fast-forward off so the poisoned execution step is reached within
    # the short budget (a no-DTM run otherwise jumps straight across it).
    CONFIG = EngineConfig(
        fault_plan=FaultPlan(corrupt_power_at_step=3),
        fast_forward=False,
    )

    def test_corrupt_power_trips_guards_single_core(self):
        engine, budget = _single_core(config=self.CONFIG)
        with pytest.raises(NumericalError):
            engine.run(budget)

    def test_corrupt_power_trips_guards_multicore(self):
        engine, budget = _multicore(config=self.CONFIG)
        with pytest.raises(NumericalError):
            engine.run(budget)
