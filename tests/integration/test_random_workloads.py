"""Property-based robustness: the engine over random valid workloads.

Hypothesis generates arbitrary (but valid) phase descriptions; whatever
the workload looks like, the coupled simulation must preserve its
invariants: exact instruction accounting, finite physical temperatures
bounded below by ambient, violation-free protection whenever a strong
policy has authority, and energy-consistent power numbers.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dtm import DvsPolicy, NoDtmPolicy
from repro.sim import SimulationEngine
from repro.workloads import Phase, Workload, make_activity_profile


@st.composite
def phases(draw):
    ipc = draw(st.floats(0.8, 2.4))
    return Phase(
        name=f"p{draw(st.integers(0, 10**6))}",
        instructions=draw(st.integers(100_000, 2_000_000)),
        base_ipc=ipc,
        memory_cpi_fraction=draw(st.floats(0.0, 0.5)),
        fetch_supply_ipc=ipc * draw(st.floats(1.2, 2.0)),
        speculation_waste=draw(st.floats(0.0, 0.4)),
        base_activities=make_activity_profile(
            draw(st.floats(0.1, 0.85)),
            draw(st.floats(0.0, 0.6)),
            draw(st.floats(0.1, 0.8)),
            draw(st.floats(0.1, 0.8)),
            draw(st.floats(0.0, 0.5)),
        ),
    )


@st.composite
def workloads(draw):
    phase_list = draw(st.lists(phases(), min_size=1, max_size=3))
    names = {p.name for p in phase_list}
    if len(names) != len(phase_list):  # regenerate duplicates cheaply
        phase_list = [
            Phase(
                name=f"{p.name}_{i}",
                instructions=p.instructions,
                base_ipc=p.base_ipc,
                memory_cpi_fraction=p.memory_cpi_fraction,
                fetch_supply_ipc=p.fetch_supply_ipc,
                speculation_waste=p.speculation_waste,
                base_activities=p.base_activities,
            )
            for i, p in enumerate(phase_list)
        ]
    return Workload("random", phase_list)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(workload=workloads())
def test_property_engine_invariants_hold(workload):
    engine = SimulationEngine(workload, policy=NoDtmPolicy())
    run = engine.run(1_000_000, settle_time_s=0.0)
    # Exact instruction accounting.
    assert run.instructions == 1_000_000
    # Physically sane temperatures.
    ambient = engine.hotspot.package.ambient_c
    assert ambient < run.max_true_temp_c < 150.0
    # Time accounting is self-consistent.
    assert 0.0 <= run.time_above_trigger_s <= run.elapsed_s * (1 + 1e-9)
    # Power is within the budget's physical envelope.
    assert 0.0 < run.mean_power_w < 60.0


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(workload=workloads())
def test_property_dvs_never_speeds_up_and_never_heats(workload):
    engine = SimulationEngine(workload, policy=NoDtmPolicy())
    init = engine.compute_initial_temperatures()
    baseline = engine.run(800_000, initial=init.copy(), settle_time_s=1e-3)
    managed = SimulationEngine(workload, policy=DvsPolicy()).run(
        800_000, initial=init.copy(), settle_time_s=1e-3
    )
    assert managed.elapsed_s >= baseline.elapsed_s * (1 - 1e-9)
    assert managed.max_true_temp_c <= baseline.max_true_temp_c + 0.5
