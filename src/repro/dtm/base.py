"""DTM policy interface.

A policy is a pure control law: sensor readings in, desired operating
point out.  The engine enforces the physical consequences (DVS switch
stalls, actual frequency from the V/f curve, power, heat).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple

from repro.errors import DtmConfigError
from repro.obs import metrics as obs_metrics


@dataclass(frozen=True)
class DtmCommand:
    """The operating point a policy requests.

    Parameters
    ----------
    gating_fraction:
        Fetch-gating duty in [0, 1): fraction of cycles on which fetch is
        gated (the paper's duty cycle x corresponds to ``1/x``).
    voltage:
        Requested supply voltage in volts; the engine maps it to the
        highest safe frequency via the V/f curve.
    clock_enabled_fraction:
        Fraction of time the global clock runs, in (0, 1]; below 1.0 only
        for clock-gating techniques.
    domain_gating:
        Local-toggling duties per clock domain (see
        :mod:`repro.dtm.domains`); empty for every other technique.
    migration:
        Activity migration as ``(source_block, target_block, fraction)``:
        the engine moves that fraction of the source block's switching
        activity onto the target (a spare structure on a migration
        floorplan).  ``None`` for every other technique.
    """

    gating_fraction: float
    voltage: float
    clock_enabled_fraction: float = 1.0
    domain_gating: Mapping[str, float] = field(default_factory=dict)
    migration: Optional[Tuple[str, str, float]] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.gating_fraction < 1.0:
            raise DtmConfigError("gating fraction must be in [0, 1)")
        if self.voltage <= 0.0:
            raise DtmConfigError("voltage must be > 0")
        if not 0.0 < self.clock_enabled_fraction <= 1.0:
            raise DtmConfigError("clock enabled fraction must be in (0, 1]")
        object.__setattr__(self, "domain_gating", dict(self.domain_gating))
        for domain, duty in self.domain_gating.items():
            if not 0.0 <= duty < 1.0:
                raise DtmConfigError(
                    f"domain {domain!r} toggle duty must be in [0, 1)"
                )
        if self.migration is not None:
            source, target, fraction = self.migration
            if source == target:
                raise DtmConfigError("migration source and target must differ")
            if not 0.0 < fraction <= 1.0:
                raise DtmConfigError("migration fraction must be in (0, 1]")


class DtmPolicy(abc.ABC):
    """Base class for all DTM techniques."""

    #: Short identifier used in result tables ("FG", "DVS", "Hyb", ...).
    name: str = "base"

    #: True when :meth:`update` consumes nothing but the array maximum
    #: (the paper's trigger/emergency comparators).  Such policies also
    #: implement :meth:`update_hottest`, and the engine's fused sensing
    #: path feeds them the maximum directly -- same float, no per-sample
    #: readings dict.  Per-block policies (migration, local toggling)
    #: leave this False and keep the mapping path.
    hottest_only: bool = False

    @abc.abstractmethod
    def update(
        self, readings: Mapping[str, float], time_s: float, dt_s: float
    ) -> DtmCommand:
        """Compute the operating point from fresh sensor ``readings``.

        Called once per sensor sample (10 kHz).  ``dt_s`` is the time since
        the previous call, which feedback controllers need.
        """

    def update_hottest(
        self, hottest: float, time_s: float, dt_s: float
    ) -> DtmCommand:
        """Compute the operating point from the hottest reading alone.

        Only valid when :attr:`hottest_only` is True; such policies
        implement their control law here and route :meth:`update`
        through ``self.update_hottest(self.hottest(readings), ...)`` so
        both entry points are one code path.
        """
        raise DtmConfigError(
            f"policy {self.name!r} needs per-block readings; "
            f"update_hottest is only valid when hottest_only is set"
        )

    @abc.abstractmethod
    def reset(self) -> None:
        """Return all controller state to power-on condition."""

    @staticmethod
    def hottest(readings: Mapping[str, float]) -> float:
        """Hottest observed temperature -- what the comparators act on."""
        if not readings:
            raise DtmConfigError("policy update needs at least one reading")
        return max(readings.values())

    def note_transition(self, previous, new) -> None:
        """Publish one controller state transition to the metrics
        registry (``dtm.state_transitions`` plus a per-edge counter).

        Call sites guard with ``previous is not new`` so steady-state
        updates pay only that identity comparison; when observability is
        off this returns before allocating the per-edge name.
        """
        if not obs_metrics.enabled():
            return
        obs_metrics.inc("dtm.state_transitions")
        obs_metrics.inc(
            f"dtm.transition.{self.name.lower().replace('-', '_')}"
            f".{previous.value}_to_{new.value}"
        )
