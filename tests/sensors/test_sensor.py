"""Single-sensor error model."""

import statistics

import pytest

from repro.errors import SimulationError
from repro.sensors import SensorParameters, ThermalSensor


class TestParameters:
    def test_defaults_match_paper(self):
        params = SensorParameters()
        # +/-1 degree effective precision as a 3-sigma bound; up to 2
        # degrees of fixed offset.
        assert params.noise_sigma_c == pytest.approx(1.0 / 3.0)
        assert params.max_offset_c == pytest.approx(2.0)

    def test_ideal_sensor_has_no_error(self):
        params = SensorParameters.ideal()
        sensor = ThermalSensor(params, seed=5)
        assert sensor.offset_c == 0.0
        assert sensor.read(83.217) == pytest.approx(83.217)

    def test_rejects_negative_values(self):
        with pytest.raises(SimulationError):
            SensorParameters(noise_sigma_c=-0.1)
        with pytest.raises(SimulationError):
            SensorParameters(max_offset_c=-1.0)
        with pytest.raises(SimulationError):
            SensorParameters(quantisation_c=-0.5)


class TestReadings:
    def test_offset_within_bound(self):
        for seed in range(50):
            sensor = ThermalSensor(SensorParameters(), seed=seed)
            assert -2.0 <= sensor.offset_c <= 2.0

    def test_offsets_vary_across_sensors(self):
        offsets = {
            ThermalSensor(SensorParameters(), seed=s).offset_c
            for s in range(20)
        }
        assert len(offsets) > 10

    def test_same_seed_reproducible(self):
        a = ThermalSensor(SensorParameters(), seed=7)
        b = ThermalSensor(SensorParameters(), seed=7)
        readings_a = [a.read(85.0) for _ in range(10)]
        readings_b = [b.read(85.0) for _ in range(10)]
        assert readings_a == readings_b

    def test_mean_reading_is_true_plus_offset(self):
        sensor = ThermalSensor(SensorParameters(quantisation_c=0.0), seed=3)
        readings = [sensor.read(85.0) for _ in range(4000)]
        assert statistics.mean(readings) == pytest.approx(
            85.0 + sensor.offset_c, abs=0.05
        )

    def test_noise_spread_matches_sigma(self):
        sensor = ThermalSensor(SensorParameters(quantisation_c=0.0), seed=3)
        readings = [sensor.read(85.0) for _ in range(4000)]
        assert statistics.stdev(readings) == pytest.approx(1.0 / 3.0, rel=0.15)

    def test_effective_precision_within_one_degree(self):
        # The paper's claim: readings stay within +/-1 degree of the
        # (offset-shifted) true value almost always.
        sensor = ThermalSensor(SensorParameters(), seed=9)
        centre = 85.0 + sensor.offset_c
        outliers = sum(
            abs(sensor.read(85.0) - centre) > 1.0 for _ in range(2000)
        )
        assert outliers / 2000 < 0.01

    def test_quantisation_step(self):
        params = SensorParameters(noise_sigma_c=0.0, max_offset_c=0.0,
                                  quantisation_c=0.25)
        sensor = ThermalSensor(params, seed=0)
        assert sensor.read(83.3) == pytest.approx(83.25)
        assert sensor.read(83.4) == pytest.approx(83.5)
