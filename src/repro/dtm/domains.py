"""Clock domains for local toggling.

The paper's related work includes "local toggling, in which the processor
domain(s) in thermal stress are slowed or stopped"; the paper reports that
it "confers little advantage over fetch gating" and drops it.  To let the
library reproduce that finding rather than assert it, the floorplan's
blocks are grouped into the four clock domains a 21264-class machine could
plausibly gate independently.

A domain's *criticality* estimates how directly stopping it stalls commit:
the integer core and memory pipeline stall everything; the front end is
buffered by the fetch queue; the FP cluster only matters to FP code (this
is local toggling's one genuine win).
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

from repro.errors import DtmConfigError

CLOCK_DOMAINS: Mapping[str, Tuple[str, ...]] = {
    "frontend": ("Icache", "Bpred", "ITB", "IntMap", "FPMap"),
    "int": ("IntQ", "IntReg", "IntExec"),
    "fp": ("FPQ", "FPReg", "FPAdd", "FPMul"),
    "mem": ("LdStQ", "Dcache", "DTB"),
}
"""Gateable domains; L2 stays on its own always-running clock."""

_DOMAIN_OF: Dict[str, str] = {
    block: domain
    for domain, blocks in CLOCK_DOMAINS.items()
    for block in blocks
}


def domain_of(block: str) -> str:
    """The clock domain containing ``block``.

    Blocks outside any gateable domain (the L2 banks) raise, since a
    local-toggling policy cannot act on them.
    """
    try:
        return _DOMAIN_OF[block]
    except KeyError:
        raise DtmConfigError(
            f"block {block!r} is not in a gateable clock domain"
        ) from None


def domain_criticality(
    domain: str, base_activities: Mapping[str, float]
) -> float:
    """How much of commit throughput stopping ``domain`` removes, per unit
    duty, for a phase with the given base activities.

    The integer and memory domains serialise the whole pipeline (1.0);
    the front end is partially hidden by fetch buffering (0.85); the FP
    cluster's criticality scales with how much FP work the phase does.
    """
    if domain not in CLOCK_DOMAINS:
        raise DtmConfigError(f"unknown clock domain {domain!r}")
    if domain in ("int", "mem"):
        return 1.0
    if domain == "frontend":
        return 0.85
    fp_activity = max(
        base_activities.get(block, 0.0) for block in CLOCK_DOMAINS["fp"]
    )
    return min(1.0, 2.5 * fp_activity)
