"""On-chip thermal sensors.

One sensor per architectural block (paper, Section 3): effective precision
of 1 degree after averaging, a fixed per-sensor offset of up to 2 degrees,
and a 10 kHz sampling rate that bounds how fast DTM can observe and react.
"""

from repro.sensors.sensor import SensorParameters, ThermalSensor
from repro.sensors.array import SensorArray

__all__ = ["SensorParameters", "ThermalSensor", "SensorArray"]
