"""Core hopping: scheduler-level DTM for multi-core chips.

Activity migration at the granularity a multi-core chip gets for free:
when the core running the hot workload crosses the trigger and its
neighbour is cooler by a margin, swap the two workloads.  Each core's
thermal capacity is then time-shared between the hot and the cool job --
no throttling at all, at the price of a context-transfer stall and any
cache-affinity loss (subsumed into the stall here).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.dtm.thresholds import ThermalThresholds
from repro.errors import DtmConfigError


@dataclass(frozen=True)
class HoppingConfig:
    """Configuration of the core hopper.

    Parameters
    ----------
    neighbour_margin_c:
        The destination core must be at least this much cooler than the
        overheating core for a swap to pay.
    min_interval_s:
        Refractory period between swaps (each one stalls both cores).
    """

    neighbour_margin_c: float = 1.0
    min_interval_s: float = 0.5e-3

    def __post_init__(self) -> None:
        if self.neighbour_margin_c < 0.0:
            raise DtmConfigError("neighbour margin must be >= 0")
        if self.min_interval_s < 0.0:
            raise DtmConfigError("min interval must be >= 0")


class CoreHopper:
    """Decides when the dual-core engine should swap workloads."""

    def __init__(
        self,
        config: Optional[HoppingConfig] = None,
        thresholds: Optional[ThermalThresholds] = None,
    ):
        self._config = config if config is not None else HoppingConfig()
        self._thresholds = (
            thresholds if thresholds is not None else ThermalThresholds()
        )
        self._last_swap_s = -1e9
        self._swaps = 0

    @property
    def config(self) -> HoppingConfig:
        """The hopper configuration."""
        return self._config

    @property
    def swaps(self) -> int:
        """Swaps decided since the last reset."""
        return self._swaps

    @staticmethod
    def _core_max(readings: Dict[str, float], core: int) -> float:
        suffix = f"#{core}"
        values = [v for n, v in readings.items() if n.endswith(suffix)]
        if not values:
            raise DtmConfigError(f"no readings for core {core}")
        return max(values)

    def update(
        self,
        readings: Dict[str, float],
        assignment: List[int],
        time_s: float,
        dt_s: float,
    ) -> bool:
        """Return True when the engine should swap the assignment now."""
        if time_s - self._last_swap_s < self._config.min_interval_s:
            return False
        hot = [self._core_max(readings, core) for core in (0, 1)]
        trigger = self._thresholds.trigger_c
        hottest_core = 0 if hot[0] >= hot[1] else 1
        other = 1 - hottest_core
        if (
            hot[hottest_core] > trigger
            and hot[hottest_core] - hot[other] >= self._config.neighbour_margin_c
        ):
            self._last_swap_s = time_s
            self._swaps += 1
            return True
        return False

    def reset(self) -> None:
        """Clear swap history."""
        self._last_swap_s = -1e9
        self._swaps = 0
