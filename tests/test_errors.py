"""Exception hierarchy."""

import pytest

from repro import errors


@pytest.mark.parametrize(
    "subclass",
    [
        errors.FloorplanError,
        errors.ThermalModelError,
        errors.PowerModelError,
        errors.WorkloadError,
        errors.DtmConfigError,
        errors.SimulationError,
    ],
)
def test_all_errors_derive_from_repro_error(subclass):
    assert issubclass(subclass, errors.ReproError)


def test_thermal_violation_is_simulation_error():
    assert issubclass(errors.ThermalViolationError, errors.SimulationError)


def test_thermal_violation_carries_context():
    exc = errors.ThermalViolationError(86.2, 85.0, 1.5e-3, "IntReg")
    assert exc.temperature_c == 86.2
    assert exc.threshold_c == 85.0
    assert exc.block == "IntReg"
    assert "IntReg" in str(exc)
    assert "86.20" in str(exc)


def test_catching_base_class_catches_subclasses():
    with pytest.raises(errors.ReproError):
        raise errors.FloorplanError("boom")
