"""Figure 4b: technique comparison with idealised DVS (no switch stall).

Paper result: with no switching overhead DVS improves, and the hybrids'
advantage shrinks to about 1 % performance (an ~11 % reduction in DTM
overhead) -- but they still win.
"""

from _helpers import (
    bench_instructions,
    bench_lockstep,
    bench_processes,
    reset_throughput,
    save_table,
    throughput_report,
)

from repro.analysis import paired_comparison, render_table
from repro.analysis.experiments import fig4_technique_comparison
from repro.core import overhead_reduction


def _run() -> str:
    reset_throughput()
    results = fig4_technique_comparison(
        dvs_mode="ideal",
        instructions=bench_instructions(),
        processes=bench_processes(),
        lockstep=bench_lockstep(),
    )
    rows = []
    for name in ("FG", "DVS", "PI-Hyb", "Hyb"):
        evaluation = results[name]
        rows.append([name, evaluation.mean_slowdown, evaluation.total_violations])
    lines = [
        render_table(
            ["technique", "mean slowdown", "violations"],
            rows,
            title="Figure 4b: DTM slowdown with DVS-ideal "
                  "(9 SPEC benchmarks)",
        )
    ]
    for hybrid in ("PI-Hyb", "Hyb"):
        reduction = overhead_reduction(
            results["DVS"].mean_slowdown, results[hybrid].mean_slowdown
        )
        stats = paired_comparison(
            results[hybrid].slowdowns, results["DVS"].slowdowns
        )
        lines.append(
            f"{hybrid} vs DVS-ideal: {reduction * 100:.1f}% overhead "
            f"reduction (paper: ~11%), p={stats.p_value:.4g}, "
            f"significant at 99%: {stats.significant(0.99)}"
        )
    lines.append(throughput_report())
    return "\n\n".join(lines)


def test_fig4b_comparison_ideal(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_table("fig4b_ideal", table)
