"""Material properties."""

import pytest

from repro.errors import ThermalModelError
from repro.thermal import COPPER, SILICON, Material


def test_silicon_and_copper_values_are_physical():
    assert 80.0 <= SILICON.thermal_conductivity <= 150.0
    assert 300.0 <= COPPER.thermal_conductivity <= 450.0
    assert COPPER.volumetric_heat_capacity > SILICON.volumetric_heat_capacity


def test_conduction_resistance_formula():
    # R = L / (k A): 1 mm of silicon over 1 mm^2.
    r = SILICON.conduction_resistance(1e-3, 1e-6)
    assert r == pytest.approx(1e-3 / (100.0 * 1e-6))


def test_conduction_resistance_scales_inversely_with_area():
    r1 = SILICON.conduction_resistance(1e-3, 1e-6)
    r2 = SILICON.conduction_resistance(1e-3, 2e-6)
    assert r1 == pytest.approx(2.0 * r2)


def test_capacitance_formula():
    c = COPPER.capacitance(1e-9)
    assert c == pytest.approx(3.55e6 * 1e-9)


@pytest.mark.parametrize("k,c", [(0.0, 1.0), (-1.0, 1.0), (1.0, 0.0)])
def test_rejects_non_physical_materials(k, c):
    with pytest.raises(ThermalModelError):
        Material(name="bad", thermal_conductivity=k, volumetric_heat_capacity=c)


def test_conduction_rejects_bad_geometry():
    with pytest.raises(ThermalModelError):
        SILICON.conduction_resistance(0.0, 1.0)
    with pytest.raises(ThermalModelError):
        SILICON.conduction_resistance(1.0, -1.0)


def test_capacitance_rejects_bad_volume():
    with pytest.raises(ThermalModelError):
        SILICON.capacitance(0.0)
