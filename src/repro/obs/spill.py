"""Per-worker spill files: run records that survive the process pool.

The shm result table carries fixed numeric result fields, but per-run
telemetry (span tables, named metric dicts) is variable-shaped, so pool
workers append each finished run record as one JSON line to their own
``<obs_dir>/spill-<pid>.jsonl``.  Appends are O_APPEND single writes,
so records from a worker that is later killed remain intact.  In the
sweep parent, records go to an in-memory list instead -- no reason to
round-trip through the filesystem for serial runs.

``run_many`` brackets a sweep with :func:`begin_collection` /
:func:`collect`: the token snapshots each existing spill file's byte
offset plus the local list length, so ``collect`` returns exactly the
records produced by *this* sweep, even when the same obs directory (and
long-lived workers) serve several sweeps in one process.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.obs import metrics


def spill_path() -> Path:
    """This process's spill-file path."""
    return metrics.obs_dir() / f"spill-{os.getpid()}.jsonl"


_LOCAL: List[Dict[str, object]] = []

_HANDLE = None
_HANDLE_KEY: Optional[Tuple[int, str]] = None

_IN_PARENT_PID: Optional[int] = None


def mark_parent() -> None:
    """Declare this process the sweep parent: its own records stay in
    memory rather than spilling to disk.  (Workers never call this, and
    a forked child of a parent stops matching the recorded pid.)"""
    global _IN_PARENT_PID
    _IN_PARENT_PID = os.getpid()


def record(rec: Dict[str, object]) -> None:
    """Store one finished run record (no-op when obs is disabled)."""
    if not metrics.enabled() or not rec:
        return
    if _IN_PARENT_PID == os.getpid():
        _LOCAL.append(rec)
        return
    global _HANDLE, _HANDLE_KEY
    path = spill_path()
    key = (os.getpid(), str(path))
    if _HANDLE is None or _HANDLE_KEY != key:
        if _HANDLE is not None and _HANDLE_KEY is not None and (
            _HANDLE_KEY[0] == os.getpid()
        ):
            try:
                _HANDLE.close()
            except Exception:  # pragma: no cover - defensive
                pass
        path.parent.mkdir(parents=True, exist_ok=True)
        _HANDLE = open(path, "a", encoding="utf-8")
        _HANDLE_KEY = key
    _HANDLE.write(json.dumps(rec, sort_keys=True, default=str) + "\n")
    _HANDLE.flush()


def begin_collection() -> Dict[str, int]:
    """Snapshot the current spill state; pass the token to
    :func:`collect` to get only records produced after this point.

    The token maps each existing spill file to its byte size, plus the
    in-memory list length under the ``""`` key.
    """
    mark_parent()
    token: Dict[str, int] = {"": len(_LOCAL)}
    directory = metrics.obs_dir()
    if directory.is_dir():
        for path in directory.glob("spill-*.jsonl"):
            try:
                token[str(path)] = path.stat().st_size
            except OSError:  # pragma: no cover - raced unlink
                pass
    return token


def collect(token: Dict[str, int]) -> List[Dict[str, object]]:
    """All run records produced since ``token`` was taken: the tail of
    every spill file (including files created after the snapshot) plus
    the parent's in-memory records past the snapshot mark."""
    records: List[Dict[str, object]] = []
    directory = metrics.obs_dir()
    if directory.is_dir():
        for path in sorted(directory.glob("spill-*.jsonl")):
            offset = token.get(str(path), 0)
            try:
                with open(path, encoding="utf-8") as handle:
                    handle.seek(offset)
                    for line in handle:
                        line = line.strip()
                        if not line:
                            continue
                        try:
                            records.append(json.loads(line))
                        except json.JSONDecodeError:
                            # A torn final line from a killed worker;
                            # the run it described already shows up as
                            # a failure in the sweep results.
                            continue
            except OSError:  # pragma: no cover - raced unlink
                continue
    records.extend(_LOCAL[token.get("", 0):])
    return records


def _writer_alive(pid: int) -> bool:
    if pid == os.getpid():
        return True
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:  # pragma: no cover - e.g. EPERM: someone's process
        return True
    return True


def discard_merged() -> None:
    """Drop spill records that have just been merged into a report.

    Called by ``run_many`` after :func:`collect`: without it, spill
    files accumulate for the life of the obs directory (one per worker
    pid, growing across sweeps).  Files whose writer process is gone
    are unlinked.  Files whose writer may still be alive are
    *truncated* instead: a live worker holds an ``O_APPEND`` handle, so
    its next record still lands safely at the (new) end of the file,
    whereas unlinking would silently divert every later record to a
    dead inode.  The parent's in-memory records are cleared too.
    """
    _LOCAL.clear()
    directory = metrics.obs_dir()
    if not directory.is_dir():
        return
    for path in directory.glob("spill-*.jsonl"):
        try:
            pid = int(path.stem.split("-", 1)[1])
        except (IndexError, ValueError):  # pragma: no cover - foreign file
            continue
        try:
            if _writer_alive(pid):
                os.truncate(path, 0)
            else:
                path.unlink()
        except OSError:  # pragma: no cover - raced unlink
            continue


def reset() -> None:
    """Close the handle and clear in-memory records (test isolation)."""
    global _HANDLE, _HANDLE_KEY, _IN_PARENT_PID
    if _HANDLE is not None:
        try:
            _HANDLE.close()
        except Exception:  # pragma: no cover - defensive
            pass
    _HANDLE = None
    _HANDLE_KEY = None
    _IN_PARENT_PID = None
    _LOCAL.clear()
