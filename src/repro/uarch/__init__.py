"""Microarchitecture models.

Two levels of detail, as described in DESIGN.md:

* :mod:`repro.uarch.pipeline` -- a cycle-level out-of-order superscalar core
  (21264-class widths and structures) driven by synthetic micro-op traces.
  Fetch gating is honoured at the fetch stage, so the paper's central
  phenomenon -- mild gating hidden by instruction-level parallelism -- is
  emergent.
* :mod:`repro.uarch.interval` -- a fast interval engine that advances one
  thermal step (10 000 cycles) at a time using ILP-response curves
  characterised on the detailed core (or a calibrated analytic stand-in).
"""

from repro.uarch.resources import MachineParameters, default_machine
from repro.uarch.isa import OpClass
from repro.uarch.trace import MicroOp, TraceGenerator
from repro.uarch.branch import GshareBranchPredictor
from repro.uarch.caches import CacheHierarchy, CacheLevelParameters
from repro.uarch.pipeline import DetailedCore, PipelineResult
from repro.uarch.activity import ActivityModel
from repro.uarch.ilp_response import (
    AnalyticIlpResponse,
    IlpResponse,
    IlpResponsePoint,
    characterise_ilp_response,
)
from repro.uarch.interval import DtmActuation, IntervalPerformanceModel, IntervalSample

__all__ = [
    "MachineParameters",
    "default_machine",
    "OpClass",
    "MicroOp",
    "TraceGenerator",
    "GshareBranchPredictor",
    "CacheHierarchy",
    "CacheLevelParameters",
    "DetailedCore",
    "PipelineResult",
    "ActivityModel",
    "IlpResponse",
    "IlpResponsePoint",
    "AnalyticIlpResponse",
    "characterise_ilp_response",
    "DtmActuation",
    "IntervalPerformanceModel",
    "IntervalSample",
]
