"""Voltage-to-frequency curve."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PowerModelError
from repro.power import Technology, VoltageFrequencyCurve, default_technology


@pytest.fixture(scope="module")
def curve():
    return VoltageFrequencyCurve(default_technology())


def test_nominal_point(curve):
    assert curve.frequency(1.3) == pytest.approx(3.0e9)
    assert curve.relative_frequency(1.3) == pytest.approx(1.0)


def test_85pct_voltage_gives_sublinear_frequency_drop(curve):
    # The alpha-power law: 15 % less voltage costs ~13 % frequency
    # (super-linear power savings, sub-linear speed loss -- the "cubic"
    # advantage of DVS).
    rel = curve.relative_frequency(0.85 * 1.3)
    assert 0.85 < rel < 0.90


def test_cubic_power_advantage(curve):
    # Power scales with V^2 f: at 85 % voltage that is a ~36 % power
    # reduction for a ~13 % frequency cost.
    v_rel = 0.85
    f_rel = curve.relative_frequency(v_rel * 1.3)
    power_rel = v_rel**2 * f_rel
    assert power_rel < 0.67
    assert f_rel > 0.85


def test_monotone_increasing_in_voltage(curve):
    voltages = [0.8 + 0.05 * i for i in range(11)]
    freqs = [curve.frequency(v) for v in voltages]
    assert all(f1 < f2 for f1, f2 in zip(freqs, freqs[1:]))


class TestLevels:
    def test_binary_levels(self, curve):
        levels = curve.levels(2, 0.85 * 1.3)
        assert len(levels) == 2
        assert levels[0][0] == pytest.approx(1.105)
        assert levels[-1][0] == pytest.approx(1.3)

    def test_levels_evenly_spaced_and_sorted(self, curve):
        levels = curve.levels(5, 1.0)
        voltages = [v for v, _ in levels]
        steps = [b - a for a, b in zip(voltages, voltages[1:])]
        assert all(s == pytest.approx(steps[0]) for s in steps)
        assert voltages[-1] == pytest.approx(1.3)

    def test_top_level_frequency_is_nominal(self, curve):
        for count in (2, 3, 5, 10):
            levels = curve.levels(count, 1.0)
            assert levels[-1][1] == pytest.approx(3.0e9)

    def test_continuous_levels(self, curve):
        levels = curve.continuous_levels(1.0)
        assert len(levels) == 100

    def test_rejects_single_level(self, curve):
        with pytest.raises(PowerModelError):
            curve.levels(1, 1.0)

    def test_rejects_low_voltage_out_of_range(self, curve):
        with pytest.raises(PowerModelError):
            curve.levels(2, 1.4)
        with pytest.raises(PowerModelError):
            curve.levels(2, 0.2)


@given(v=st.floats(0.75, 1.3))
def test_property_frequency_within_physical_bounds(v):
    curve = VoltageFrequencyCurve(default_technology())
    rel = curve.relative_frequency(v)
    assert 0.0 < rel <= 1.0 + 1e-12
    # Frequency never falls faster than (V - Vt) itself.
    assert rel >= (v - 0.35) / (1.3 - 0.35) * 0.5


def test_different_alpha_changes_curvature():
    gentle = VoltageFrequencyCurve(Technology(alpha=1.0))
    steep = VoltageFrequencyCurve(Technology(alpha=2.0))
    v = 1.0
    assert steep.relative_frequency(v) < gentle.relative_frequency(v)
