"""Vectorized power evaluation versus the scalar reference path.

``block_powers_vector`` is the engine's hot path; ``block_powers`` wraps
it for mapping-based callers; ``block_powers_reference`` preserves the
original per-block composition of ``dynamic_power`` and ``leakage_power``
as the numerical anchor.  All three must agree to machine precision.
"""

import numpy as np
import pytest

from repro.errors import PowerModelError
from repro.power.technology import default_technology

TECH = default_technology()
NOMINAL_V = TECH.vdd_nominal
NOMINAL_F = TECH.frequency_nominal


def _random_inputs(power_model, seed):
    rng = np.random.default_rng(seed)
    names = power_model.block_names
    activities = {n: float(a) for n, a in zip(names, rng.uniform(0, 1, len(names)))}
    temps = {n: float(t) for n, t in zip(names, rng.uniform(45, 110, len(names)))}
    return activities, temps


class TestVectorAgainstReference:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize(
        "voltage,frequency",
        [
            (NOMINAL_V, NOMINAL_F),
            (NOMINAL_V * 0.85, NOMINAL_F * 0.7),
        ],
    )
    def test_mapping_wrapper_matches_reference(
        self, power_model, seed, voltage, frequency
    ):
        activities, temps = _random_inputs(power_model, seed)
        wrapped = power_model.block_powers(activities, voltage, frequency, temps)
        reference = power_model.block_powers_reference(
            activities, voltage, frequency, temps
        )
        for name in power_model.block_names:
            assert wrapped[name] == pytest.approx(reference[name], rel=1e-12)

    def test_global_clock_gate_matches_reference(self, power_model):
        activities, temps = _random_inputs(power_model, 7)
        for gate in (0.25, 1.0):
            wrapped = power_model.block_powers(
                activities, NOMINAL_V, NOMINAL_F, temps, gate
            )
            reference = power_model.block_powers_reference(
                activities, NOMINAL_V, NOMINAL_F, temps, gate
            )
            for name in power_model.block_names:
                assert wrapped[name] == pytest.approx(
                    reference[name], rel=1e-12
                )

    def test_per_block_clock_gate_matches_reference(self, power_model):
        activities, temps = _random_inputs(power_model, 11)
        gates = {"IntReg": 0.3, "IntExec": 0.5}
        wrapped = power_model.block_powers(
            activities, NOMINAL_V, NOMINAL_F, temps, gates
        )
        reference = power_model.block_powers_reference(
            activities, NOMINAL_V, NOMINAL_F, temps, gates
        )
        for name in power_model.block_names:
            assert wrapped[name] == pytest.approx(reference[name], rel=1e-12)

    def test_check_false_matches_check_true(self, power_model):
        n = len(power_model.block_names)
        rng = np.random.default_rng(13)
        acts = rng.uniform(0, 1, n)
        temps = rng.uniform(45, 110, n)
        checked = power_model.block_powers_vector(
            acts, NOMINAL_V, NOMINAL_F, temps
        )
        unchecked = power_model.block_powers_vector(
            acts, NOMINAL_V, NOMINAL_F, temps, check=False
        )
        assert (checked == unchecked).all()


class TestVectorValidation:
    def test_bad_activity_shape(self, power_model):
        with pytest.raises(PowerModelError, match="shape"):
            power_model.block_powers_vector(
                np.zeros(3), NOMINAL_V, NOMINAL_F, np.zeros(3)
            )

    def test_out_of_range_activity_names_block(self, power_model):
        n = len(power_model.block_names)
        acts = np.zeros(n)
        acts[4] = 1.5
        with pytest.raises(PowerModelError, match=power_model.block_names[4]):
            power_model.block_powers_vector(
                acts, NOMINAL_V, NOMINAL_F, np.full(n, 85.0)
            )

    def test_out_of_range_gate_vector(self, power_model):
        n = len(power_model.block_names)
        gate = np.ones(n)
        gate[2] = -0.1
        with pytest.raises(PowerModelError, match="clock fraction"):
            power_model.block_powers_vector(
                np.zeros(n), NOMINAL_V, NOMINAL_F, np.full(n, 85.0), gate
            )

    def test_operating_point_checked_even_unchecked(self, power_model):
        """check=False skips array validation only -- an illegal (V, f)
        still raises, on the first use of that operating point."""
        n = len(power_model.block_names)
        with pytest.raises(PowerModelError, match="exceeds"):
            power_model.block_powers_vector(
                np.zeros(n),
                NOMINAL_V * 0.8,
                NOMINAL_F,
                np.full(n, 85.0),
                check=False,
            )

    def test_block_index_roundtrip(self, power_model):
        for i, name in enumerate(power_model.block_names):
            assert power_model.block_index(name) == i
        with pytest.raises(PowerModelError):
            power_model.block_index("NoSuchBlock")
