"""Engine configuration."""

import pytest

from repro.errors import SimulationError
from repro.sim import EngineConfig


def test_defaults_match_paper():
    config = EngineConfig()
    assert config.thermal_step_cycles == 10_000
    assert config.dvs_switch_time_s == pytest.approx(10e-6)
    assert config.dvs_mode == "stall"


def test_ideal_mode_accepted():
    assert EngineConfig(dvs_mode="ideal").dvs_mode == "ideal"


def test_rejects_unknown_mode():
    with pytest.raises(SimulationError):
        EngineConfig(dvs_mode="free")


def test_rejects_tiny_thermal_step():
    with pytest.raises(SimulationError):
        EngineConfig(thermal_step_cycles=10)


def test_rejects_negative_switch_time():
    with pytest.raises(SimulationError):
        EngineConfig(dvs_switch_time_s=-1e-6)


class TestCompiledTrace:
    """Resolution of the compiled-trace mode (field, env, default)."""

    def test_defaults_to_on(self, monkeypatch):
        from repro.sim.config import COMPILED_TRACE_ENV

        monkeypatch.delenv(COMPILED_TRACE_ENV, raising=False)
        assert EngineConfig().resolved_compiled_trace() == "on"

    @pytest.mark.parametrize(
        "raw, expected",
        [
            ("1", "on"),
            ("on", "on"),
            ("true", "on"),
            ("0", "off"),
            ("off", "off"),
            ("false", "off"),
            ("verify", "verify"),
            (" VERIFY ", "verify"),
        ],
    )
    def test_env_aliases(self, monkeypatch, raw, expected):
        from repro.sim.config import COMPILED_TRACE_ENV

        monkeypatch.setenv(COMPILED_TRACE_ENV, raw)
        assert EngineConfig().resolved_compiled_trace() == expected

    def test_explicit_field_beats_env(self, monkeypatch):
        from repro.sim.config import COMPILED_TRACE_ENV

        monkeypatch.setenv(COMPILED_TRACE_ENV, "off")
        config = EngineConfig(compiled_trace="verify")
        assert config.resolved_compiled_trace() == "verify"

    def test_bad_env_value_raises(self, monkeypatch):
        from repro.sim.config import COMPILED_TRACE_ENV

        monkeypatch.setenv(COMPILED_TRACE_ENV, "sometimes")
        with pytest.raises(SimulationError):
            EngineConfig().resolved_compiled_trace()

    def test_bad_field_rejected_at_construction(self):
        with pytest.raises(SimulationError):
            EngineConfig(compiled_trace="fast")
