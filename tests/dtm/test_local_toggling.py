"""Local toggling policy."""

import pytest

from repro.dtm import LocalTogglingConfig, LocalTogglingPolicy, ThermalThresholds
from repro.errors import DtmConfigError

TRIGGER = ThermalThresholds().trigger_c
DT = 1e-4


def readings(int_temp, fp_temp=70.0, l2_temp=70.0):
    return {"IntReg": int_temp, "FPAdd": fp_temp, "L2": l2_temp,
            "Icache": 72.0, "Dcache": 72.0}


def test_idle_when_cool():
    policy = LocalTogglingPolicy()
    cmd = policy.update(readings(75.0), 0.0, DT)
    assert cmd.domain_gating == {}
    assert cmd.gating_fraction == 0.0


def test_gates_the_hot_domain_only():
    policy = LocalTogglingPolicy()
    cmd = None
    for i in range(20):
        cmd = policy.update(readings(TRIGGER + 2.0), i * DT, DT)
    assert "int" in cmd.domain_gating
    assert cmd.domain_gating["int"] > 0.0
    assert "fp" not in cmd.domain_gating


def test_hot_fp_gates_fp_domain():
    policy = LocalTogglingPolicy()
    cmd = None
    for i in range(20):
        cmd = policy.update(readings(75.0, fp_temp=TRIGGER + 2.0), i * DT, DT)
    assert "fp" in cmd.domain_gating
    assert "int" not in cmd.domain_gating


def test_duty_saturates_at_max():
    policy = LocalTogglingPolicy(LocalTogglingConfig(max_duty=0.6))
    for i in range(2000):
        cmd = policy.update(readings(TRIGGER + 5.0), i * DT, DT)
    assert cmd.domain_gating["int"] == pytest.approx(0.6)


def test_duty_unwinds_when_cool():
    policy = LocalTogglingPolicy()
    for i in range(100):
        policy.update(readings(TRIGGER + 3.0), i * DT, DT)
    hot_duty = policy.duties["int"]
    for i in range(100, 400):
        policy.update(readings(70.0), i * DT, DT)
    assert policy.duties["int"] < hot_duty


def test_l2_readings_are_ignored():
    policy = LocalTogglingPolicy()
    cmd = None
    for i in range(20):
        cmd = policy.update(readings(75.0, l2_temp=TRIGGER + 5.0), i * DT, DT)
    assert cmd.domain_gating == {}


def test_never_touches_voltage_or_fetch():
    policy = LocalTogglingPolicy()
    cmd = policy.update(readings(TRIGGER + 5.0), 0.0, DT)
    assert cmd.voltage == pytest.approx(1.3)
    assert cmd.gating_fraction == 0.0


def test_reset():
    policy = LocalTogglingPolicy()
    for i in range(50):
        policy.update(readings(TRIGGER + 5.0), i * DT, DT)
    policy.reset()
    assert all(duty == 0.0 for duty in policy.duties.values())


def test_config_validation():
    with pytest.raises(DtmConfigError):
        LocalTogglingConfig(ki=0.0)
    with pytest.raises(DtmConfigError):
        LocalTogglingConfig(max_duty=1.0)


def test_engine_run_regulates_and_matches_fg_roughly():
    """The paper's finding: LT confers little advantage over FG."""
    from repro.dtm import FetchGatingPolicy, NoDtmPolicy
    from repro.sim import SimulationEngine
    from repro.workloads import build_benchmark

    workload = build_benchmark("gzip")
    engine = SimulationEngine(workload, policy=NoDtmPolicy())
    init = engine.compute_initial_temperatures()
    base = engine.run(4_000_000, initial=init.copy(), settle_time_s=2e-3)
    lt = SimulationEngine(workload, policy=LocalTogglingPolicy()).run(
        4_000_000, initial=init.copy(), settle_time_s=2e-3
    )
    fg = SimulationEngine(workload, policy=FetchGatingPolicy()).run(
        4_000_000, initial=init.copy(), settle_time_s=2e-3
    )
    assert lt.violations == 0
    lt_slow = lt.elapsed_s / base.elapsed_s
    fg_slow = fg.elapsed_s / base.elapsed_s
    # Same ballpark of overhead: neither technique dominates by an order
    # of magnitude (the suite-level comparison lives in bench A6).
    assert abs(lt_slow - fg_slow) < 0.6 * max(fg_slow - 1.0, lt_slow - 1.0)
