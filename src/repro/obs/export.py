"""Exporters: registry snapshots as JSON and Prometheus text format.

The Prometheus exposition follows the text format conventions: metric
names are the registry's dotted names with dots mangled to underscores
under a ``repro_`` prefix; histograms expose cumulative ``le`` bucket
series plus ``_sum`` / ``_count``; span totals are exported alongside
the registry as ``repro_span_seconds_total`` / ``repro_span_calls_total``
with a ``name`` label.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs import metrics, trace

_INF = float("inf")


def registry_snapshot(
    registry: Optional[metrics.MetricsRegistry] = None,
) -> Dict[str, object]:
    """Registry contents plus span totals as one JSON-serialisable
    mapping (``counters`` / ``gauges`` / ``histograms`` / ``spans``)."""
    registry = registry if registry is not None else metrics.REGISTRY
    snapshot = registry.snapshot()
    snapshot["spans"] = {
        name: {"seconds": seconds, "calls": calls}
        for name, (seconds, calls) in trace.totals().items()
    }
    return snapshot


def _mangle(name: str) -> str:
    return "repro_" + name.replace(".", "_")


def _fmt(value: float) -> str:
    # NaN/Inf first: int(nan) raises ValueError and int(inf) raises
    # OverflowError, and Prometheus text requires these exact spellings.
    if value != value:
        return "NaN"
    if value == _INF:
        return "+Inf"
    if value == -_INF:
        return "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def prometheus_text(
    registry: Optional[metrics.MetricsRegistry] = None,
    counters: Optional[Dict[str, float]] = None,
    spans: Optional[Dict[str, object]] = None,
) -> str:
    """The registry (or explicit ``counters`` / ``spans`` tables, as a
    :class:`~repro.obs.report.SweepReport` holds) in Prometheus text
    exposition format.

    ``spans`` values may be ``(seconds, calls)`` tuples/lists or
    ``{"seconds": ..., "calls": ...}`` mappings.
    """
    registry = registry if registry is not None else metrics.REGISTRY
    lines: List[str] = []

    if counters is None:
        counter_table = registry.counter_values()
        counter_help = {
            name: c.help for name, c in registry._counters.items() if c.help
        }
    else:
        counter_table = counters
        counter_help = {}
    for name in sorted(counter_table):
        mangled = _mangle(name)
        if name in counter_help:
            lines.append(f"# HELP {mangled} {counter_help[name]}")
        lines.append(f"# TYPE {mangled} counter")
        lines.append(f"{mangled} {_fmt(counter_table[name])}")

    if counters is None:
        for name in sorted(registry._gauges):
            gauge = registry._gauges[name]
            mangled = _mangle(name)
            if gauge.help:
                lines.append(f"# HELP {mangled} {gauge.help}")
            lines.append(f"# TYPE {mangled} gauge")
            lines.append(f"{mangled} {_fmt(gauge.value)}")

        for name in sorted(registry._histograms):
            hist = registry._histograms[name]
            mangled = _mangle(name)
            if hist.help:
                lines.append(f"# HELP {mangled} {hist.help}")
            lines.append(f"# TYPE {mangled} histogram")
            cumulative = 0
            for bound, count in zip(hist.bounds, hist.counts):
                cumulative += count
                lines.append(
                    f'{mangled}_bucket{{le="{_fmt(bound)}"}} {cumulative}'
                )
            lines.append(f'{mangled}_bucket{{le="+Inf"}} {hist.count}')
            lines.append(f"{mangled}_sum {repr(float(hist.sum))}")
            lines.append(f"{mangled}_count {hist.count}")

    span_table: Dict[str, object] = (
        spans
        if spans is not None
        else {name: pair for name, pair in trace.totals().items()}
    )
    if span_table:
        lines.append("# TYPE repro_span_seconds_total counter")
        lines.append("# TYPE repro_span_calls_total counter")
        for name in sorted(span_table):
            value = span_table[name]
            if isinstance(value, dict):
                seconds, calls = value["seconds"], value["calls"]
            else:
                seconds, calls = value[0], value[1]
            label = _escape_label(name)
            lines.append(
                f'repro_span_seconds_total{{name="{label}"}} {repr(float(seconds))}'
            )
            lines.append(
                f'repro_span_calls_total{{name="{label}"}} {_fmt(float(calls))}'
            )

    return "\n".join(lines) + "\n" if lines else ""
