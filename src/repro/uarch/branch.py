"""Branch prediction.

A global-history gshare predictor with 2-bit saturating counters.  The
trace generator produces branch program counters and outcomes from a biased
per-site process, so the mispredict rate of a workload phase is an
*emergent* property of predictor capacity and branch behaviour, as it would
be with a real binary.

The default configuration uses zero history bits (a bimodal table):
synthetic branch outcomes are site-biased Bernoulli draws, so global
history carries no signal and folding it in only dilutes training.  Tests
exercise non-zero history configurations explicitly.
"""

from __future__ import annotations

from repro.errors import SimulationError


class GshareBranchPredictor:
    """Gshare: PC xor global-history indexes a table of 2-bit counters.

    Parameters
    ----------
    index_bits:
        log2 of the pattern history table size.
    history_bits:
        Number of global history bits folded into the index (must not
        exceed ``index_bits``).
    """

    _WEAKLY_TAKEN = 2

    def __init__(self, index_bits: int = 14, history_bits: int = 0):
        if index_bits < 1 or index_bits > 24:
            raise SimulationError("index_bits must be in [1, 24]")
        if history_bits < 0 or history_bits > index_bits:
            raise SimulationError("history_bits must be in [0, index_bits]")
        self._index_bits = index_bits
        self._history_bits = history_bits
        self._mask = (1 << index_bits) - 1
        self._history_mask = (1 << history_bits) - 1
        self._table = [self._WEAKLY_TAKEN] * (1 << index_bits)
        self._history = 0
        self._predictions = 0
        self._mispredictions = 0

    @property
    def table_size(self) -> int:
        """Number of pattern-history-table entries."""
        return len(self._table)

    @property
    def predictions(self) -> int:
        """Total predictions made."""
        return self._predictions

    @property
    def mispredictions(self) -> int:
        """Total mispredictions."""
        return self._mispredictions

    @property
    def mispredict_rate(self) -> float:
        """Fraction of predictions that were wrong (0.0 before any)."""
        if self._predictions == 0:
            return 0.0
        return self._mispredictions / self._predictions

    def _index(self, pc: int) -> int:
        # Instructions are 4-byte aligned; drop the always-zero low bits so
        # the whole table is usable.
        return ((pc >> 2) ^ (self._history & self._history_mask)) & self._mask

    def predict(self, pc: int) -> bool:
        """Predict taken/not-taken for the branch at ``pc``."""
        return self._table[self._index(pc)] >= self._WEAKLY_TAKEN

    def update(self, pc: int, taken: bool) -> bool:
        """Record the real outcome; returns True when the earlier prediction
        for this branch was wrong."""
        index = self._index(pc)
        prediction = self._table[index] >= self._WEAKLY_TAKEN
        counter = self._table[index]
        if taken:
            self._table[index] = min(3, counter + 1)
        else:
            self._table[index] = max(0, counter - 1)
        self._history = ((self._history << 1) | int(taken)) & self._history_mask
        self._predictions += 1
        mispredicted = prediction != taken
        if mispredicted:
            self._mispredictions += 1
        return mispredicted

    def reset_statistics(self) -> None:
        """Zero the prediction counters (table state is kept)."""
        self._predictions = 0
        self._mispredictions = 0
