"""Figure 3b: stand-alone fetch gating versus the DVS reference line.

Paper result: FG slowdown is flat while ILP hides the gating, then rises
linearly with the gated fraction from about duty cycle 3; the FG and DVS
curves cross near duty cycle 2; only the deepest setting eliminates all
violations (which is why stand-alone FG needs feedback control).
"""

from _helpers import (
    bench_instructions,
    bench_lockstep,
    bench_processes,
    reset_throughput,
    save_table,
    throughput_report,
)

from repro.analysis import render_table
from repro.analysis.experiments import fig3b_fg_vs_dvs


def _run() -> str:
    reset_throughput()
    result = fig3b_fg_vs_dvs(
        instructions=bench_instructions(),
        processes=bench_processes(),
        lockstep=bench_lockstep(),
    )
    rows = []
    for duty in sorted(result.fg_mean_slowdowns, reverse=True):
        rows.append(
            [
                duty,
                result.fg_mean_slowdowns[duty],
                result.fg_violations[duty],
            ]
        )
    rows.append(["DVS (ref)", result.dvs_mean_slowdown, result.dvs_violations])
    table = render_table(
        ["duty cycle", "mean slowdown", "violations"],
        rows,
        title=(
            "Figure 3b: fixed-duty stand-alone FG sweep with binary "
            "DVS-stall superimposed"
        ),
    )
    return table + "\n\n" + throughput_report()


def test_fig3b_fg_vs_dvs(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_table("fig3b", table)
