"""Branch predictor."""

import random

import pytest

from repro.errors import SimulationError
from repro.uarch import GshareBranchPredictor


def test_learns_always_taken_branch():
    p = GshareBranchPredictor()
    for _ in range(10):
        p.update(0x100, True)
    assert p.predict(0x100) is True


def test_learns_never_taken_branch():
    p = GshareBranchPredictor()
    for _ in range(10):
        p.update(0x200, False)
    assert p.predict(0x200) is False


def test_biased_site_mispredict_near_bias_floor():
    p = GshareBranchPredictor()
    rng = random.Random(1)
    mispredicts = sum(p.update(0x40, rng.random() < 0.1) for _ in range(20_000))
    rate = mispredicts / 20_000
    # 2-bit counters on a p=0.1 Bernoulli site: close to but above 10 %.
    assert 0.09 < rate < 0.16


def test_alternating_pattern_needs_history():
    # T,N,T,N ... is hopeless for a bimodal table but learnable with
    # global history.
    bimodal = GshareBranchPredictor(history_bits=0)
    gshare = GshareBranchPredictor(history_bits=4)
    for predictor in (bimodal, gshare):
        for i in range(2_000):
            predictor.update(0x80, i % 2 == 0)
        predictor_rate = predictor.mispredict_rate
    for i in range(2_000):
        bimodal.update(0x80, i % 2 == 0)
        gshare.update(0x80, i % 2 == 0)
    assert gshare.mispredict_rate < 0.05
    assert bimodal.mispredict_rate > 0.3


def test_update_reports_mispredict_consistent_with_predict():
    p = GshareBranchPredictor()
    for outcome in (True, False, True, True, False):
        predicted = p.predict(0x10)
        mispredicted = p.update(0x10, outcome)
        assert mispredicted == (predicted != outcome)


def test_distinct_pcs_use_distinct_counters():
    p = GshareBranchPredictor()
    for _ in range(10):
        p.update(0x100, True)
        p.update(0x104, False)
    assert p.predict(0x100) is True
    assert p.predict(0x104) is False


def test_statistics_and_reset():
    p = GshareBranchPredictor()
    for i in range(100):
        p.update(0x10, i % 3 == 0)
    assert p.predictions == 100
    assert 0.0 < p.mispredict_rate < 1.0
    p.reset_statistics()
    assert p.predictions == 0
    assert p.mispredict_rate == 0.0


def test_table_size():
    assert GshareBranchPredictor(index_bits=10).table_size == 1024


def test_rejects_bad_configuration():
    with pytest.raises(SimulationError):
        GshareBranchPredictor(index_bits=0)
    with pytest.raises(SimulationError):
        GshareBranchPredictor(index_bits=30)
    with pytest.raises(SimulationError):
        GshareBranchPredictor(index_bits=8, history_bits=9)
    with pytest.raises(SimulationError):
        GshareBranchPredictor(history_bits=-1)
