"""Figure 4a: technique comparison with DVS-stall.

Paper result: slowdown ordering FG >> DVS > PI-Hyb ~ Hyb; the hybrids beat
DVS by 5.5-6 % performance, about a 25 % reduction in DTM overhead, with
the differences significant at the 99 % confidence level.
"""

from _helpers import (
    bench_instructions,
    bench_lockstep,
    bench_processes,
    reset_throughput,
    save_table,
    throughput_report,
)

from repro.analysis import paired_comparison, render_table
from repro.analysis.experiments import fig4_technique_comparison
from repro.core import overhead_reduction


def _run() -> str:
    reset_throughput()
    results = fig4_technique_comparison(
        dvs_mode="stall",
        instructions=bench_instructions(),
        processes=bench_processes(),
        lockstep=bench_lockstep(),
    )
    benchmarks = sorted(results["DVS"].slowdowns)
    rows = []
    for name in ("FG", "DVS", "PI-Hyb", "Hyb"):
        evaluation = results[name]
        row = [name, evaluation.mean_slowdown, evaluation.total_violations]
        rows.append(row)
    lines = [
        render_table(
            ["technique", "mean slowdown", "violations"],
            rows,
            title="Figure 4a: DTM slowdown with DVS-stall "
                  "(9 SPEC benchmarks)",
        )
    ]
    per_bench_rows = [
        [b] + [results[n].slowdowns[b] for n in ("FG", "DVS", "PI-Hyb", "Hyb")]
        for b in benchmarks
    ]
    lines.append(
        render_table(
            ["benchmark", "FG", "DVS", "PI-Hyb", "Hyb"],
            per_bench_rows,
            title="Per-benchmark slowdowns",
        )
    )
    for hybrid in ("PI-Hyb", "Hyb"):
        reduction = overhead_reduction(
            results["DVS"].mean_slowdown, results[hybrid].mean_slowdown
        )
        stats = paired_comparison(
            results[hybrid].slowdowns, results["DVS"].slowdowns
        )
        lines.append(
            f"{hybrid} vs DVS: {reduction * 100:.1f}% overhead reduction "
            f"(paper: ~25%), p={stats.p_value:.4g}, "
            f"significant at 99%: {stats.significant(0.99)}"
        )
    lines.append(throughput_report())
    return "\n\n".join(lines)


def test_fig4a_comparison_stall(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_table("fig4a_stall", table)
