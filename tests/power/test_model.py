"""PowerModel facade."""

import pytest

from repro.errors import PowerModelError
from repro.floorplan import Block, Floorplan
from repro.power import BlockPowerSpec, PowerModel


class TestConstruction:
    def test_default_specs_cover_alpha_floorplan(self, floorplan):
        PowerModel(floorplan)  # does not raise

    def test_missing_spec_raises(self):
        fp = Floorplan([Block("custom", 0, 0, 1e-3, 1e-3)])
        with pytest.raises(PowerModelError) as err:
            PowerModel(fp)
        assert "custom" in str(err.value)

    def test_custom_specs(self):
        fp = Floorplan([Block("x", 0, 0, 1e-3, 1e-3)])
        model = PowerModel(
            fp, specs={"x": BlockPowerSpec("x", 2.0, 0.3)}
        )
        assert model.spec("x").peak_dynamic_w == 2.0

    def test_unknown_spec_lookup_raises(self, power_model):
        with pytest.raises(PowerModelError):
            power_model.spec("nope")


class TestBlockPowers:
    def test_covers_all_blocks(
        self, power_model, uniform_activities, warm_temperatures
    ):
        powers = power_model.block_powers(
            uniform_activities, 1.3, 3e9, warm_temperatures
        )
        assert set(powers) == set(power_model.floorplan.block_names)
        assert all(p > 0.0 for p in powers.values())

    def test_total_power_in_calibrated_range(
        self, power_model, uniform_activities, warm_temperatures
    ):
        total = power_model.total_power(
            uniform_activities, 1.3, 3e9, warm_temperatures
        )
        assert 20.0 < total < 40.0

    def test_low_voltage_reduces_power_superlinearly(
        self, power_model, uniform_activities, warm_temperatures
    ):
        vf = power_model.vf_curve
        v_low = 0.85 * 1.3
        full = power_model.total_power(
            uniform_activities, 1.3, 3e9, warm_temperatures
        )
        low = power_model.total_power(
            uniform_activities, v_low, vf.frequency(v_low), warm_temperatures
        )
        assert low / full < 0.75  # much more than the 13 % frequency cut

    def test_hotter_chip_leaks_more(
        self, power_model, uniform_activities, warm_temperatures
    ):
        hot = {name: 100.0 for name in warm_temperatures}
        base = power_model.total_power(
            uniform_activities, 1.3, 3e9, warm_temperatures
        )
        hotter = power_model.total_power(uniform_activities, 1.3, 3e9, hot)
        assert hotter > base

    def test_overclocking_beyond_vf_curve_raises(
        self, power_model, uniform_activities, warm_temperatures
    ):
        with pytest.raises(PowerModelError):
            power_model.block_powers(
                uniform_activities, 1.105, 3e9, warm_temperatures
            )

    def test_missing_activity_raises(self, power_model, warm_temperatures):
        with pytest.raises(PowerModelError):
            power_model.block_powers({"IntReg": 0.5}, 1.3, 3e9, warm_temperatures)

    def test_missing_temperature_raises(
        self, power_model, uniform_activities
    ):
        with pytest.raises(PowerModelError):
            power_model.block_powers(
                uniform_activities, 1.3, 3e9, {"IntReg": 85.0}
            )

    def test_clock_gated_interval_consumes_less(
        self, power_model, uniform_activities, warm_temperatures
    ):
        full = power_model.total_power(
            uniform_activities, 1.3, 3e9, warm_temperatures
        )
        gated = power_model.total_power(
            uniform_activities, 1.3, 3e9, warm_temperatures,
            clock_enabled_fraction=0.5,
        )
        assert gated < full
        # Leakage remains even with the clock stopped.
        fully_gated = power_model.total_power(
            uniform_activities, 1.3, 3e9, warm_temperatures,
            clock_enabled_fraction=0.0,
        )
        assert fully_gated > 0.0
