"""ILP response: how cycle-IPC degrades with fetch-gating duty cycle.

The crossover at the heart of the paper is set by this curve: while the
out-of-order window can hide gated fetch cycles, slowdown stays near zero;
once effective fetch bandwidth falls below the workload's IPC, slowdown
grows linearly in the gating fraction.

Two implementations:

* :func:`characterise_ilp_response` measures the curve on the detailed
  cycle-level core for a given trace parameterisation;
* :class:`AnalyticIlpResponse` is the calibrated closed form
  ``ipc(g) = softmin(base_ipc, fetch_supply_ipc * (1 - g))`` used by the
  fast interval engine, validated against the measured curve in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import WorkloadError
from repro.uarch.resources import MachineParameters


@dataclass(frozen=True)
class IlpResponsePoint:
    """One measured point: relative cycle-IPC at a gating fraction."""

    gating_fraction: float
    ipc_rel: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.gating_fraction < 1.0:
            raise WorkloadError("gating fraction must be in [0, 1)")
        if self.ipc_rel <= 0.0:
            raise WorkloadError("relative IPC must be > 0")


class IlpResponse:
    """Piecewise-linear interpolation over measured response points.

    Points are normalised so that ``ipc_rel(0.0) == 1.0``.
    """

    def __init__(self, points: Sequence[IlpResponsePoint]):
        if len(points) < 2:
            raise WorkloadError("need at least two response points")
        ordered = sorted(points, key=lambda p: p.gating_fraction)
        fractions = [p.gating_fraction for p in ordered]
        if len(set(fractions)) != len(fractions):
            raise WorkloadError("duplicate gating fractions in response points")
        if ordered[0].gating_fraction != 0.0:
            raise WorkloadError("response must include the gating_fraction=0 point")
        base = ordered[0].ipc_rel
        self._points = [
            IlpResponsePoint(p.gating_fraction, p.ipc_rel / base) for p in ordered
        ]

    @property
    def points(self) -> List[IlpResponsePoint]:
        """Normalised points, ascending in gating fraction."""
        return list(self._points)

    def ipc_rel(self, gating_fraction: float) -> float:
        """Relative cycle-IPC at ``gating_fraction`` (linear interpolation,
        linear extrapolation toward zero beyond the last point, floored at
        a small positive value)."""
        if not 0.0 <= gating_fraction < 1.0:
            raise WorkloadError("gating fraction must be in [0, 1)")
        pts = self._points
        if gating_fraction <= pts[0].gating_fraction:
            return pts[0].ipc_rel
        for lo, hi in zip(pts, pts[1:]):
            if gating_fraction <= hi.gating_fraction:
                span = hi.gating_fraction - lo.gating_fraction
                weight = (gating_fraction - lo.gating_fraction) / span
                return lo.ipc_rel + weight * (hi.ipc_rel - lo.ipc_rel)
        # Beyond the last measured point: fall off proportionally to the
        # remaining fetch bandwidth.
        last = pts[-1]
        remaining = 1.0 - last.gating_fraction
        if remaining <= 0.0:
            return max(1e-3, last.ipc_rel)
        scale = (1.0 - gating_fraction) / remaining
        return max(1e-3, last.ipc_rel * scale)


class AnalyticIlpResponse(IlpResponse):
    """Closed-form response used by the fast interval engine.

    ``ipc(g) = softmin(base_ipc, fetch_supply_ipc * (1 - g))`` where the
    softmin is a p-norm blend that rounds the corner the way a finite
    out-of-order window does.

    Parameters
    ----------
    base_ipc:
        The phase's IPC without gating.
    fetch_supply_ipc:
        Sustainable post-front-end instruction supply at zero gating
        (fetch width derated by taken branches, I-cache misses and
        mispredict redirects).
    sharpness:
        p-norm exponent; larger values give a sharper knee.
    """

    def __init__(
        self, base_ipc: float, fetch_supply_ipc: float, sharpness: float = 12.0
    ):
        if base_ipc <= 0.0 or fetch_supply_ipc <= 0.0:
            raise WorkloadError("IPC parameters must be > 0")
        if fetch_supply_ipc < base_ipc:
            raise WorkloadError(
                "fetch supply must be at least the base IPC "
                "(the machine sustains the phase without gating)"
            )
        if sharpness <= 0.0:
            raise WorkloadError("sharpness must be > 0")
        self._base_ipc = base_ipc
        self._supply = fetch_supply_ipc
        self._sharpness = sharpness
        base = self._raw(0.0)
        points = [
            IlpResponsePoint(g, self._raw(g) / base)
            for g in [i / 100.0 for i in range(0, 96, 5)]
        ]
        super().__init__(points)

    def _raw(self, gating_fraction: float) -> float:
        supply = self._supply * (1.0 - gating_fraction)
        if supply <= 0.0:
            return 1e-3
        p = self._sharpness
        return (self._base_ipc**-p + supply**-p) ** (-1.0 / p)

    def ipc_rel(self, gating_fraction: float) -> float:
        """Exact closed form (no interpolation error)."""
        if not 0.0 <= gating_fraction < 1.0:
            raise WorkloadError("gating fraction must be in [0, 1)")
        return self._raw(gating_fraction) / self._raw(0.0)

    @property
    def base_ipc(self) -> float:
        """The phase's ungated IPC."""
        return self._base_ipc

    @property
    def fetch_supply_ipc(self) -> float:
        """Sustainable instruction supply at zero gating."""
        return self._supply


def characterise_ilp_response(
    trace_parameters,
    gating_fractions: Sequence[float],
    cycles_per_point: int = 30_000,
    machine: Optional[MachineParameters] = None,
    seed: int = 7,
    warmup_cycles: int = 15_000,
) -> IlpResponse:
    """Measure the ILP response on the detailed core.

    Runs one fresh core per gating fraction over ``cycles_per_point``
    cycles (after ``warmup_cycles`` of cache/predictor warmup) with
    identical trace statistics and returns the normalised response.
    ``gating_fractions`` must include 0.0.
    """
    from repro.uarch.pipeline import DetailedCore

    if 0.0 not in gating_fractions:
        raise WorkloadError("gating_fractions must include 0.0")
    if cycles_per_point < 1_000:
        raise WorkloadError("cycles_per_point too small to be meaningful")
    points = []
    for fraction in gating_fractions:
        core = DetailedCore.warmed(
            trace_parameters,
            seed=seed,
            machine=machine,
            gating_fraction=fraction,
        )
        if warmup_cycles > 0:
            core.run(max_cycles=warmup_cycles)
            core.reset_statistics()
        result = core.run(max_cycles=cycles_per_point)
        points.append(IlpResponsePoint(fraction, max(result.ipc, 1e-3)))
    return IlpResponse(points)
