"""Torn-tail tolerance of ``load_journal``.

A sweep killed mid-append (SIGKILL, power loss, disk full) leaves at
most one incomplete line at the end of its journal.  Resume must skip
that tail loudly -- a warning plus a structured observability event --
and never let it poison the completed prefix.  These tests pin the
behaviours that failed on the seed: no warning/event was emitted for a
torn tail, and a tail sheared inside a multi-byte UTF-8 sequence made
``load_journal`` raise ``UnicodeDecodeError`` instead of resuming.
"""

from __future__ import annotations

import json

import pytest

import repro.obs as obs
from repro.sim import RunSpec, load_journal, run_many
from repro.sim.supervisor import SweepJournal, result_from_journal_entry


@pytest.fixture(scope="module")
def journal_entry():
    """One completed run, as (digest, result)."""
    spec = RunSpec("gzip", "FG", instructions=1_500_000)
    return "good0", run_many([spec])[0]


def _write_journal(path, entry, tail: bytes) -> None:
    digest, result = entry
    journal = SweepJournal(path)
    journal.record(digest, 0, result)
    journal.close()
    with open(path, "ab") as handle:
        handle.write(tail)


class TestTornTail:
    def test_truncated_json_tail_warns(self, tmp_path, journal_entry):
        path = tmp_path / "sweep.jsonl"
        _write_journal(path, journal_entry, b'{"digest": "torn", "resu')
        with pytest.warns(RuntimeWarning, match="torn trailing line"):
            completed = load_journal(path)
        assert set(completed) == {"good0"}

    def test_tail_sheared_inside_utf8_sequence(self, tmp_path, journal_entry):
        # A crash can land between the bytes of one UTF-8 code point;
        # the resulting tail is not even decodable text.  On the seed
        # this raised UnicodeDecodeError and failed the whole resume.
        path = tmp_path / "sweep.jsonl"
        torn = '{"digest": "é-torn"'.encode("utf-8")[:-2]
        _write_journal(path, journal_entry, torn)
        with pytest.warns(RuntimeWarning, match="torn trailing line"):
            completed = load_journal(path)
        assert set(completed) == {"good0"}

    def test_torn_tail_emits_structured_event(
        self, tmp_path, journal_entry, monkeypatch
    ):
        obs_dir = tmp_path / "obs"
        monkeypatch.setenv(obs.OBS_DIR_ENV, str(obs_dir))
        obs.reset_for_testing()
        previous = obs.set_enabled(True)
        try:
            path = tmp_path / "sweep.jsonl"
            _write_journal(path, journal_entry, b'{"digest": "to')
            with pytest.warns(RuntimeWarning):
                load_journal(path)
            events = []
            for event_file in obs_dir.glob("events-*.jsonl"):
                with open(event_file, encoding="utf-8") as handle:
                    events.extend(json.loads(line) for line in handle if line.strip())
            torn = [e for e in events if e["event"] == "journal.torn_tail"]
            assert len(torn) == 1
            assert torn[0]["path"] == str(path)
            assert torn[0]["line"] == 2
            assert obs.REGISTRY.counter("journal.torn_tail_skips").value == 1
        finally:
            obs.set_enabled(previous)
            obs.reset_for_testing()

    def test_midfile_corruption_flagged_separately(
        self, tmp_path, journal_entry
    ):
        digest, result = journal_entry
        path = tmp_path / "sweep.jsonl"
        journal = SweepJournal(path)
        journal.record(digest, 0, result)
        journal.close()
        content = path.read_bytes()
        # Corrupt a *middle* line: good, garbage, good.
        path.write_bytes(b'{"not": "a journal entry"}\n' + content)
        with pytest.warns(RuntimeWarning, match="malformed"):
            completed = load_journal(path)
        assert set(completed) == {digest}

    def test_resume_reexecutes_only_the_torn_run(self, tmp_path):
        specs = [RunSpec("gzip", "FG", instructions=1_500_000, seed=s) for s in (0, 1)]
        path = tmp_path / "sweep.jsonl"
        reference = run_many(specs, journal=str(path), lockstep=False)
        # Tear the second entry in half, as a kill mid-append would.
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(lines[0] + lines[1][: len(lines[1]) // 2])
        with pytest.warns(RuntimeWarning, match="torn trailing line"):
            resumed = run_many(specs, resume=str(path), lockstep=False)
        assert [r.to_json_dict() for r in resumed] == [
            r.to_json_dict() for r in reference
        ]
        # The re-executed finish was appended; the journal is whole again.
        assert len(load_journal(path)) == 2


class TestEntryRebuild:
    def test_rebuild_matches_journal_round_trip(self, tmp_path, journal_entry):
        digest, result = journal_entry
        path = tmp_path / "sweep.jsonl"
        _write_journal(path, journal_entry, b"")
        with open(path, encoding="utf-8") as handle:
            entry = json.loads(handle.readline())
        rebuilt = result_from_journal_entry(entry)
        assert rebuilt.to_json_dict() == result.to_json_dict()

    def test_malformed_entry_raises(self):
        with pytest.raises((KeyError, TypeError)):
            result_from_journal_entry({"digest": "x"})
        with pytest.raises(TypeError):
            result_from_journal_entry({"result": {"benchmark": "gzip"}})
