"""Driving the cycle-level out-of-order core directly.

Runs the detailed 21264-class machine on a synthetic integer phase,
reports its microarchitectural statistics, and then measures the ILP
response -- how cycle-IPC degrades as fetch gating deepens -- which is the
architectural phenomenon behind the paper's crossover point.

Run:  python examples/detailed_core_demo.py
"""

from repro.analysis import render_table
from repro.uarch import DetailedCore, characterise_ilp_response
from repro.uarch.trace import TraceParameters

PHASE = TraceParameters(
    working_set_bytes=96 * 1024,
    sequential_fraction=0.75,
    dep_distance_mean=10.0,
    branch_predictability=0.95,
)


def main() -> None:
    print("running the detailed core (20k warmup + 40k measured cycles)...")
    core = DetailedCore.warmed(PHASE, seed=1)
    core.run(max_cycles=20_000)
    core.reset_statistics()
    result = core.run(max_cycles=40_000)

    print(f"\n  IPC:                  {result.ipc:.3f}")
    print(f"  branch mispredicts:   {result.branch_mispredict_rate:.1%}")
    print(f"  I-cache miss rate:    {result.icache_miss_rate:.2%}")
    print(f"  D-cache miss rate:    {result.dcache_miss_rate:.2%}")
    print(f"  L2 miss rate:         {result.l2_miss_rate:.2%}")

    hot_blocks = sorted(
        result.activities.items(), key=lambda kv: kv[1], reverse=True
    )[:6]
    print("\n  busiest blocks (normalised switching activity):")
    for block, activity in hot_blocks:
        print(f"    {block:8s} {activity:.3f}")

    print("\nmeasuring the ILP response (one core per duty cycle)...")
    gatings = [0.0, 0.1, 0.2, 1.0 / 3.0, 0.5, 2.0 / 3.0]
    response = characterise_ilp_response(
        PHASE, gatings, cycles_per_point=25_000
    )
    rows = []
    for point in response.points:
        duty = "inf" if point.gating_fraction == 0.0 else (
            f"{1.0 / point.gating_fraction:.1f}"
        )
        rows.append([duty, point.gating_fraction, point.ipc_rel,
                     1.0 - point.ipc_rel])
    print()
    print(render_table(
        ["duty cycle", "gated fraction", "relative IPC", "slowdown"],
        rows,
        title="ILP response: mild gating is hidden by the out-of-order "
              "window; deep gating starves it",
    ))


if __name__ == "__main__":
    main()
