"""Per-block sensor array and sampling-rate enforcement."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sensors import SensorArray, SensorParameters
from repro.sensors.array import NOISE_CHUNK, NOISE_CHUNK_MAX
from repro.sensors.faults import SensorFault


@pytest.fixture()
def array(floorplan):
    return SensorArray(floorplan, seed=0)


def flat_temps(floorplan, value=85.0):
    return {name: value for name in floorplan.block_names}


class TestCoverage:
    def test_one_sensor_per_block(self, array, floorplan):
        assert set(array.block_names) == set(floorplan.block_names)

    def test_sample_covers_all_blocks(self, array, floorplan):
        readings = array.sample(flat_temps(floorplan), 0.0)
        assert set(readings) == set(floorplan.block_names)

    def test_missing_temperature_raises(self, array):
        with pytest.raises(SimulationError):
            array.sample({"IntReg": 85.0}, 0.0)


class TestSamplingRate:
    def test_default_is_10khz(self, array):
        assert array.sampling_period_s == pytest.approx(100e-6)

    def test_first_sample_due_immediately(self, array):
        assert array.due(0.0)

    def test_early_resample_rejected(self, array, floorplan):
        array.sample(flat_temps(floorplan), 0.0)
        assert not array.due(50e-6)
        with pytest.raises(SimulationError):
            array.sample(flat_temps(floorplan), 50e-6)

    def test_resample_after_period(self, array, floorplan):
        array.sample(flat_temps(floorplan), 0.0)
        assert array.due(100e-6)
        array.sample(flat_temps(floorplan), 100e-6)

    def test_rejects_non_positive_rate(self, floorplan):
        with pytest.raises(SimulationError):
            SensorArray(floorplan, sampling_rate_hz=0.0)


class TestErrors:
    def test_per_block_offsets_differ(self, array):
        offsets = {array.offset_of(name) for name in array.block_names}
        assert len(offsets) > len(array.block_names) // 2

    def test_offset_lookup_unknown_block(self, array):
        with pytest.raises(SimulationError):
            array.offset_of("nope")

    def test_ideal_array_reads_exactly(self, floorplan):
        array = SensorArray(
            floorplan, parameters=SensorParameters.ideal(), seed=0
        )
        readings = array.sample(flat_temps(floorplan, 83.4), 0.0)
        assert all(v == pytest.approx(83.4) for v in readings.values())

    def test_seeded_reproducibility(self, floorplan):
        temps = flat_temps(floorplan)
        a = SensorArray(floorplan, seed=11).sample(temps, 0.0)
        b = SensorArray(floorplan, seed=11).sample(temps, 0.0)
        assert a == b

    def test_max_reading(self, array, floorplan):
        readings = {"a": 1.0, "b": 3.0}
        assert SensorArray.max_reading(readings) == 3.0
        with pytest.raises(SimulationError):
            SensorArray.max_reading({})


class TestVectorPath:
    """The engine's vectorized sensing fast path.

    ``sample_vector`` must be *bit-identical* to ``sample``: same fixed
    offsets, same per-sensor noise streams (pre-drawn in growing
    chunks), same round-half-even quantisation.
    """

    def _vector_temps(self, array, temps):
        return np.array([temps[name] for name in array.block_names])

    def test_bit_identical_to_scalar_across_chunk_refills(self, floorplan):
        scalar = SensorArray(floorplan, seed=7)
        vector = SensorArray(floorplan, seed=7)
        temps = flat_temps(floorplan)
        vec = self._vector_temps(vector, temps)
        period = scalar.sampling_period_s
        # Enough samples to cross the first noise-chunk refill and the
        # doubled second chunk, so buffer turnover is exercised too.
        count = NOISE_CHUNK + NOISE_CHUNK * 2 + 10
        for i in range(count):
            time_s = i * period
            assert scalar.sample(temps, time_s) == vector.sample_vector(
                vec, time_s
            )

    def test_noise_chunk_growth_is_bounded(self, floorplan):
        array = SensorArray(floorplan, seed=3)
        vec = self._vector_temps(array, flat_temps(floorplan))
        period = array.sampling_period_s
        for i in range(NOISE_CHUNK * 40):
            array.sample_vector(vec, i * period)
        assert array._noise_chunk <= NOISE_CHUNK_MAX

    def test_fault_free_array_is_vector_eligible(self, array):
        assert array.vector_eligible

    def test_faulted_array_is_not_vector_eligible(self, floorplan):
        faulted = SensorArray(
            floorplan, seed=0, faults=(SensorFault.dropout("FPMul"),)
        )
        assert not faulted.vector_eligible
        vec = self._vector_temps(faulted, flat_temps(floorplan))
        with pytest.raises(SimulationError, match="fault-free"):
            faulted.sample_vector(vec, 0.0)

    def test_mixing_scalar_reads_into_vector_stream_raises(self, floorplan):
        array = SensorArray(floorplan, seed=0)
        vec = self._vector_temps(array, flat_temps(floorplan))
        array.sample_vector(vec, 0.0)
        with pytest.raises(SimulationError, match="mix"):
            array.sample(flat_temps(floorplan), array.sampling_period_s)

    def test_vector_respects_sampling_period(self, floorplan):
        array = SensorArray(floorplan, seed=0)
        vec = self._vector_temps(array, flat_temps(floorplan))
        array.sample_vector(vec, 0.0)
        with pytest.raises(SimulationError, match="sampling period"):
            array.sample_vector(vec, array.sampling_period_s / 10.0)

    def test_ideal_vector_reads_exactly(self, floorplan):
        array = SensorArray(
            floorplan, parameters=SensorParameters.ideal(), seed=0
        )
        vec = self._vector_temps(array, flat_temps(floorplan, 83.4))
        readings = array.sample_vector(vec, 0.0)
        assert all(v == pytest.approx(83.4) for v in readings.values())
