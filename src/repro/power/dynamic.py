"""Per-block dynamic power.

Dynamic power at block level follows the classic CV^2 f form Wattch uses::

    P_dyn = P_peak * gate * (clock_fraction + (1 - clock_fraction) * activity)
                   * (V / V_nom)^2 * (f / f_nom)

``P_peak`` is the block's dynamic power at 100 % activity and nominal
voltage/frequency.  ``clock_fraction`` models the block's share of clock
tree and other always-switching power, which persists at zero activity but
vanishes when the clock is gated (``gate`` is the fraction of the interval
the clock is running, 1.0 except under global clock gating).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PowerModelError


@dataclass(frozen=True)
class BlockPowerSpec:
    """Static power characteristics of one floorplan block.

    Parameters
    ----------
    name:
        Block name, matching the floorplan.
    peak_dynamic_w:
        Dynamic power at activity 1.0, nominal V and f.
    leakage_ref_w:
        Leakage at the reference temperature (see
        :class:`~repro.power.leakage.LeakageParameters`) and nominal voltage.
    clock_fraction:
        Fraction of ``peak_dynamic_w`` that switches regardless of activity
        (clock tree, precharge); removed only by clock gating.
    """

    name: str
    peak_dynamic_w: float
    leakage_ref_w: float
    clock_fraction: float = 0.15

    def __post_init__(self) -> None:
        if self.peak_dynamic_w < 0.0:
            raise PowerModelError(f"block {self.name!r}: peak dynamic power < 0")
        if self.leakage_ref_w < 0.0:
            raise PowerModelError(f"block {self.name!r}: reference leakage < 0")
        if not 0.0 <= self.clock_fraction <= 1.0:
            raise PowerModelError(
                f"block {self.name!r}: clock fraction must be in [0, 1]"
            )


def dynamic_power(
    spec: BlockPowerSpec,
    activity: float,
    relative_voltage: float,
    relative_frequency: float,
    clock_enabled_fraction: float = 1.0,
) -> float:
    """Dynamic power (W) of one block over an interval.

    Parameters
    ----------
    spec:
        The block's power characteristics.
    activity:
        Average switching activity in [0, 1] relative to the block's peak.
    relative_voltage, relative_frequency:
        V/V_nom and f/f_nom for the interval.
    clock_enabled_fraction:
        Fraction of the interval during which the clock runs (global clock
        gating sets this below 1.0).
    """
    if not 0.0 <= activity <= 1.0:
        raise PowerModelError(
            f"block {spec.name!r}: activity {activity} outside [0, 1]"
        )
    if not 0.0 <= clock_enabled_fraction <= 1.0:
        raise PowerModelError(
            f"block {spec.name!r}: clock fraction {clock_enabled_fraction} "
            f"outside [0, 1]"
        )
    if relative_voltage <= 0.0 or relative_frequency <= 0.0:
        raise PowerModelError("relative voltage and frequency must be > 0")
    switching = spec.clock_fraction + (1.0 - spec.clock_fraction) * activity
    return (
        spec.peak_dynamic_w
        * clock_enabled_fraction
        * switching
        * relative_voltage**2
        * relative_frequency
    )
