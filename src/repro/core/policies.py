"""Policy factory: construct any of the paper's techniques by name."""

from __future__ import annotations

from typing import Optional

from repro.dtm.base import DtmPolicy
from repro.dtm.clock_gating import ClockGatingConfig, ClockGatingPolicy
from repro.dtm.dvs import DvsConfig, DvsPolicy
from repro.dtm.fetch_gating import FetchGatingConfig, FetchGatingPolicy
from repro.dtm.hybrid import HybConfig, HybPolicy, PIHybConfig, PIHybPolicy
from repro.dtm.local_toggling import LocalTogglingConfig, LocalTogglingPolicy
from repro.dtm.none import NoDtmPolicy
from repro.dtm.predictive import PredictiveHybConfig, PredictiveHybPolicy
from repro.dtm.thresholds import ThermalThresholds
from repro.errors import DtmConfigError

POLICY_NAMES = ("none", "FG", "CG", "LT", "DVS", "Hyb", "PI-Hyb", "Pred-Hyb")
"""Names accepted by :func:`make_policy`.

Activity migration ("AM") is deliberately absent: it requires the
migration floorplan and power specs, so it is constructed explicitly (see
``repro.dtm.migration``)."""


def make_policy(
    name: str,
    thresholds: Optional[ThermalThresholds] = None,
    config=None,
) -> DtmPolicy:
    """Build a DTM policy by its table name.

    Parameters
    ----------
    name:
        One of :data:`POLICY_NAMES` (case sensitive, as printed in the
        paper's figures).
    thresholds:
        Thermal thresholds shared by all techniques.
    config:
        Optional technique-specific config object (``DvsConfig``,
        ``FetchGatingConfig``, ``ClockGatingConfig``, ``HybConfig`` or
        ``PIHybConfig``); defaults to the paper's configuration.
    """
    if name == "none":
        if config is not None:
            raise DtmConfigError("the no-DTM baseline takes no config")
        return NoDtmPolicy()
    if name == "FG":
        _check(config, FetchGatingConfig, name)
        return FetchGatingPolicy(config, thresholds)
    if name == "CG":
        _check(config, ClockGatingConfig, name)
        return ClockGatingPolicy(config, thresholds)
    if name == "LT":
        _check(config, LocalTogglingConfig, name)
        return LocalTogglingPolicy(config, thresholds)
    if name == "Pred-Hyb":
        _check(config, PredictiveHybConfig, name)
        return PredictiveHybPolicy(config, thresholds)
    if name == "DVS":
        _check(config, DvsConfig, name)
        return DvsPolicy(config, thresholds)
    if name == "Hyb":
        _check(config, HybConfig, name)
        return HybPolicy(config, thresholds)
    if name == "PI-Hyb":
        _check(config, PIHybConfig, name)
        return PIHybPolicy(config, thresholds)
    raise DtmConfigError(f"unknown policy {name!r}; choose from {POLICY_NAMES}")


def _check(config, expected_type, name: str) -> None:
    if config is not None and not isinstance(config, expected_type):
        raise DtmConfigError(
            f"policy {name!r} expects a {expected_type.__name__}, "
            f"got {type(config).__name__}"
        )
