"""Cycle-level out-of-order superscalar core.

A trace-driven 21264-class machine: 4-wide fetch through a gshare branch
predictor and structural I-cache, rename into an 80-entry ROB with separate
integer/floating-point issue queues and a load/store queue, dependence-aware
issue against per-cluster widths, and in-order commit.

Fetch gating -- the paper's ILP technique -- is applied at the fetch stage
with a fractional duty-cycle accumulator, so the degree to which the
out-of-order window hides gating is an emergent property of the machine and
the workload's ILP, not a modelling assumption.

As in sim-outorder, a mispredicted branch stalls fetch from the moment it
enters the window until it resolves plus a redirect penalty; wrong-path
energy is accounted by charging front-end and issue activity during those
dead cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import SimulationError
from repro.uarch.branch import GshareBranchPredictor
from repro.uarch.caches import CacheHierarchy
from repro.uarch.isa import OpClass, execution_latency
from repro.uarch.resources import MachineParameters, default_machine
from repro.uarch.trace import MicroOp, TraceGenerator

WRONG_PATH_EVENTS_PER_CYCLE: Dict[str, float] = {
    # Activity charged while fetch is chasing a wrong path (between a
    # mispredicted branch entering the window and the redirect completing).
    "Icache": 0.60,
    "Bpred": 0.60,
    "ITB": 0.60,
    "IntMap": 1.50,
    "IntQ": 1.00,
    "IntReg": 2.00,
    "IntExec": 0.80,
    "LdStQ": 0.30,
    "Dcache": 0.30,
    "DTB": 0.30,
}


@dataclass
class _WindowEntry:
    """One in-flight micro-op."""

    op: MicroOp
    issued: bool = False
    ready_cycle: Optional[int] = None  # result availability once issued

    def completed(self, cycle: int) -> bool:
        return self.ready_cycle is not None and self.ready_cycle <= cycle


@dataclass
class PipelineResult:
    """Summary of one detailed-core run.

    ``activities`` are per-block switching activities in [0, 1], already
    normalised by the per-block peak event rates of
    :mod:`repro.uarch.activity`.
    """

    cycles: int
    instructions: int
    activities: Dict[str, float]
    event_counts: Dict[str, float]
    branch_mispredict_rate: float
    icache_miss_rate: float
    dcache_miss_rate: float
    l2_miss_rate: float

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles


class DetailedCore:
    """The cycle-level machine.

    Parameters
    ----------
    trace:
        Micro-op source.
    machine:
        Structural widths/sizes (defaults to the 21264-class machine).
    caches:
        Structural cache hierarchy (fresh default when omitted).
    gating_fraction:
        Fraction of cycles on which fetch is gated, in [0, 1); the paper's
        duty cycle x corresponds to ``gating_fraction = 1/x``.
    relative_frequency:
        Clock relative to nominal; scales main-memory latency in cycles.
    """

    def __init__(
        self,
        trace: TraceGenerator,
        machine: Optional[MachineParameters] = None,
        caches: Optional[CacheHierarchy] = None,
        gating_fraction: float = 0.0,
        relative_frequency: float = 1.0,
    ):
        if not 0.0 <= gating_fraction < 1.0:
            raise SimulationError("gating fraction must be in [0, 1)")
        if relative_frequency <= 0.0:
            raise SimulationError("relative frequency must be > 0")
        self._trace = trace
        self._machine = machine if machine is not None else default_machine()
        self._caches = caches if caches is not None else CacheHierarchy()
        self._predictor = GshareBranchPredictor()
        self._gating_fraction = gating_fraction
        self._relative_frequency = relative_frequency

        self._cycle = 0
        self._committed = 0
        self._gate_accumulator = 0.0
        self._fetch_stall_until = 0
        self._pending_redirect_seq: Optional[int] = None

        self._fetch_buffer: List[MicroOp] = []
        self._rob: List[_WindowEntry] = []
        self._int_queue: List[_WindowEntry] = []
        self._fp_queue: List[_WindowEntry] = []
        self._lsq_occupancy = 0

        self._ready_at: Dict[int, int] = {}
        self._inflight_seqs: set = set()
        self._events: Dict[str, float] = {}
        self._stat_cycle_base = 0
        self._stat_committed_base = 0

    @classmethod
    def warmed(
        cls,
        trace_parameters,
        seed: int = 0,
        machine: Optional[MachineParameters] = None,
        gating_fraction: float = 0.0,
        relative_frequency: float = 1.0,
        pretrain_branches: int = 20_000,
    ) -> "DetailedCore":
        """Build a core in steady state: caches pre-warmed with the
        workload's footprints and branch counters pre-trained on the same
        seeded stream the core will execute.

        This stands in for the paper's 300 M-cycle full-detail warmup,
        which is infeasible at Python simulation speeds.  Pre-training
        drives the 2-bit counters to their converged per-site state; the
        inherent (bias-limited) mispredicts remain.
        """
        from repro.uarch.trace import TraceGenerator

        caches = CacheHierarchy()
        caches.prewarm(
            trace_parameters.working_set_bytes,
            trace_parameters.code_footprint_bytes,
        )
        core = cls(
            trace=TraceGenerator(trace_parameters, seed=seed),
            machine=machine,
            caches=caches,
            gating_fraction=gating_fraction,
            relative_frequency=relative_frequency,
        )
        if pretrain_branches > 0:
            trainer = TraceGenerator(trace_parameters, seed=seed)
            trained = 0
            while trained < pretrain_branches:
                op = trainer.next_op()
                if op.op_class is OpClass.BRANCH:
                    core.predictor.update(op.pc, op.taken)
                    trained += 1
            core.predictor.reset_statistics()
        return core

    # --- bookkeeping -------------------------------------------------------------

    @property
    def machine(self) -> MachineParameters:
        """Structural parameters."""
        return self._machine

    @property
    def caches(self) -> CacheHierarchy:
        """The structural cache hierarchy."""
        return self._caches

    @property
    def predictor(self) -> GshareBranchPredictor:
        """The branch predictor."""
        return self._predictor

    def _count(self, block: str, amount: float = 1.0) -> None:
        self._events[block] = self._events.get(block, 0.0) + amount

    def _producer_ready(self, consumer: MicroOp, distance: int) -> bool:
        producer_seq = consumer.seq - distance
        if producer_seq < 0:
            return True
        ready = self._ready_at.get(producer_seq)
        if ready is None:
            # Either long retired (pruned / never tracked) or still in
            # flight without a completion time.
            return producer_seq not in self._inflight_seqs
        return ready <= self._cycle

    # --- pipeline stages ---------------------------------------------------------

    def _commit_stage(self) -> None:
        committed = 0
        while (
            self._rob
            and committed < self._machine.commit_width
            and self._rob[0].completed(self._cycle)
        ):
            entry = self._rob.pop(0)
            committed += 1
            self._committed += 1
            op = entry.op
            if op.op_class.is_memory:
                self._lsq_occupancy -= 1
            if op.op_class.is_fp:
                self._count("FPReg")  # architectural writeback
            else:
                self._count("IntReg")
            self._inflight_seqs.discard(op.seq)
        # Prune the completion map behind the window.
        if self._rob:
            horizon = self._rob[0].op.seq - 600
        else:
            horizon = self._trace.generated - 600
        if len(self._ready_at) > 2048:
            self._ready_at = {
                seq: cyc for seq, cyc in self._ready_at.items() if seq >= horizon
            }

    def _issue_from_queue(self, queue: List[_WindowEntry], width: int) -> None:
        issued = 0
        index = 0
        while index < len(queue) and issued < width:
            entry = queue[index]
            op = entry.op
            if all(self._producer_ready(op, d) for d in op.src_distances):
                latency = execution_latency(op.op_class)
                if op.op_class.is_memory:
                    access = self._caches.access_data(
                        op.address, self._relative_frequency
                    )
                    latency += access.latency
                    self._count("Dcache")
                    self._count("DTB")
                    self._count("LdStQ")
                    if access.touched_l2:
                        self._count("L2")
                    if access.touched_memory:
                        self._count("L2")  # miss handling traffic
                entry.issued = True
                entry.ready_cycle = self._cycle + latency
                self._ready_at[op.seq] = entry.ready_cycle
                if op.op_class.is_fp:
                    self._count("FPQ")
                    self._count("FPReg", 2.0)
                    self._count("FPAdd" if op.op_class is OpClass.FADD else "FPMul")
                else:
                    self._count("IntQ")
                    self._count("IntReg", 2.0)
                    self._count("IntExec")
                if op.op_class is OpClass.BRANCH and op.seq == self._pending_redirect_seq:
                    # Redirect completes a penalty after the branch resolves.
                    self._fetch_stall_until = max(
                        self._fetch_stall_until,
                        entry.ready_cycle + self._machine.branch_mispredict_penalty,
                    )
                    self._pending_redirect_seq = None
                queue.pop(index)
                issued += 1
            else:
                index += 1

    def _issue_stage(self) -> None:
        self._issue_from_queue(self._int_queue, self._machine.int_issue_width)
        self._issue_from_queue(self._fp_queue, self._machine.fp_issue_width)

    def _dispatch_stage(self) -> None:
        dispatched = 0
        while (
            self._fetch_buffer
            and dispatched < self._machine.rename_width
            and len(self._rob) < self._machine.rob_size
        ):
            op = self._fetch_buffer[0]
            if op.op_class.is_fp:
                if len(self._fp_queue) >= self._machine.fp_queue_size:
                    break
            else:
                if len(self._int_queue) >= self._machine.int_queue_size:
                    break
            if (
                op.op_class.is_memory
                and self._lsq_occupancy >= self._machine.load_store_queue_size
            ):
                break
            self._fetch_buffer.pop(0)
            entry = _WindowEntry(op=op)
            self._rob.append(entry)
            self._inflight_seqs.add(op.seq)
            if op.op_class.is_memory:
                self._lsq_occupancy += 1
                self._count("LdStQ")
            if op.op_class.is_fp:
                self._fp_queue.append(entry)
                self._count("FPMap")
            else:
                self._int_queue.append(entry)
                self._count("IntMap")
            dispatched += 1

    def _fetch_stage(self) -> None:
        if self._cycle < self._fetch_stall_until:
            if self._pending_redirect_seq is not None:
                for block, rate in WRONG_PATH_EVENTS_PER_CYCLE.items():
                    self._count(block, rate)
            return
        if self._pending_redirect_seq is not None:
            # Waiting for the mispredicted branch to resolve: the front end
            # keeps fetching the wrong path.
            for block, rate in WRONG_PATH_EVENTS_PER_CYCLE.items():
                self._count(block, rate)
            return
        self._gate_accumulator += self._gating_fraction
        if self._gate_accumulator >= 1.0:
            self._gate_accumulator -= 1.0
            return
        space = self._machine.fetch_buffer_size - len(self._fetch_buffer)
        if space <= 0:
            return

        first = True
        for _ in range(min(self._machine.fetch_width, space)):
            op = self._trace.next_op()
            if first:
                access = self._caches.access_instruction(
                    op.pc, self._relative_frequency
                )
                self._count("Icache")
                self._count("ITB")
                self._count("Bpred")
                if access.touched_l2:
                    self._count("L2")
                if access.touched_memory:
                    self._count("L2")
                if access.latency > self._caches.icache.params.hit_latency:
                    self._fetch_stall_until = self._cycle + access.latency
                first = False
            self._fetch_buffer.append(op)
            if op.op_class is OpClass.BRANCH:
                self._count("Bpred")
                predicted = self._predictor.predict(op.pc)
                mispredicted = self._predictor.update(op.pc, op.taken)
                if mispredicted:
                    self._pending_redirect_seq = op.seq
                    break
                if predicted and op.taken:
                    break  # a taken branch ends the fetch group

    # --- driving -----------------------------------------------------------------

    def run(
        self,
        max_cycles: Optional[int] = None,
        max_instructions: Optional[int] = None,
    ) -> PipelineResult:
        """Run until a cycle or instruction budget is exhausted.

        Budgets count from the current position, so ``run`` can be called
        repeatedly (e.g. a warmup run followed by ``reset_statistics`` and
        a measurement run).  Returns statistics since the last reset.
        """
        if max_cycles is None and max_instructions is None:
            raise SimulationError("need a cycle or instruction budget")
        start_cycle = self._cycle
        start_committed = self._committed
        while True:
            if max_cycles is not None and self._cycle - start_cycle >= max_cycles:
                break
            if (
                max_instructions is not None
                and self._committed - start_committed >= max_instructions
            ):
                break
            self._commit_stage()
            self._issue_stage()
            self._dispatch_stage()
            self._fetch_stage()
            self._cycle += 1
        return self._result()

    def reset_statistics(self) -> None:
        """Zero all statistics while keeping machine state (window, caches,
        predictor contents).  Use after a warmup run so results reflect
        steady-state behaviour, mirroring the paper's 300 M-cycle warmup."""
        self._stat_cycle_base = self._cycle
        self._stat_committed_base = self._committed
        self._events = {}
        self._caches.icache.reset_statistics()
        self._caches.dcache.reset_statistics()
        self._caches.l2.reset_statistics()
        self._predictor.reset_statistics()

    def _result(self) -> PipelineResult:
        from repro.uarch.activity import normalise_event_counts

        cycles = self._cycle - self._stat_cycle_base
        return PipelineResult(
            cycles=cycles,
            instructions=self._committed - self._stat_committed_base,
            activities=normalise_event_counts(self._events, max(1, cycles)),
            event_counts=dict(self._events),
            branch_mispredict_rate=self._predictor.mispredict_rate,
            icache_miss_rate=self._caches.icache.miss_rate,
            dcache_miss_rate=self._caches.dcache.miss_rate,
            l2_miss_rate=self._caches.l2.miss_rate,
        )
