"""Feedback-control building blocks for DTM policies.

The paper uses a PI controller for multi-step DVS, an integral controller
for fetch gating ("a few registers, an adder, and a multiplier"), and a
simple low-pass filter to keep binary decisions from chattering on sensor
noise.
"""

from __future__ import annotations

from repro.errors import DtmConfigError


class PIController:
    """Discrete proportional-integral controller with anti-windup.

    Drives its output toward keeping ``measurement`` at ``setpoint``.  The
    output is clamped to [output_min, output_max]; while clamped, the
    integral term is frozen (anti-windup), which matters because thermal
    plants are slow and windup would badly overshoot.

    Sign convention: a *positive* error (measurement above setpoint) pushes
    the output *up*; callers wanting "hotter means stronger response" feed
    ``measurement - setpoint`` as-is.
    """

    def __init__(
        self,
        kp: float,
        ki: float,
        setpoint: float,
        output_min: float,
        output_max: float,
    ):
        if output_min >= output_max:
            raise DtmConfigError("output_min must be < output_max")
        if kp < 0.0 or ki < 0.0:
            raise DtmConfigError("gains must be >= 0")
        if kp == 0.0 and ki == 0.0:
            raise DtmConfigError("at least one gain must be non-zero")
        self._kp = kp
        self._ki = ki
        self._setpoint = setpoint
        self._min = output_min
        self._max = output_max
        self._integral = 0.0

    @property
    def setpoint(self) -> float:
        """The regulation target."""
        return self._setpoint

    def update(self, measurement: float, dt: float) -> float:
        """Advance the controller by ``dt`` seconds and return the new
        output."""
        if dt <= 0.0:
            raise DtmConfigError("controller dt must be > 0")
        error = measurement - self._setpoint
        candidate_integral = self._integral + error * dt
        output = self._kp * error + self._ki * candidate_integral
        if self._min <= output <= self._max:
            self._integral = candidate_integral
            return output
        # Clamped: keep the integral only if it moves the output back
        # inside the range (standard conditional anti-windup).
        clamped = min(max(output, self._min), self._max)
        unwinding = (output > self._max and error < 0.0) or (
            output < self._min and error > 0.0
        )
        if unwinding:
            self._integral = candidate_integral
        return clamped

    def reset(self) -> None:
        """Zero the integral state."""
        self._integral = 0.0


class IntegralController(PIController):
    """Pure integral controller (the paper's fetch-gating controller)."""

    def __init__(
        self, ki: float, setpoint: float, output_min: float, output_max: float
    ):
        super().__init__(
            kp=0.0, ki=ki, setpoint=setpoint, output_min=output_min,
            output_max=output_max,
        )


class LowPassFilter:
    """First-order exponential smoother.

    ``alpha`` is the per-sample blend weight of the new value: small alpha
    means heavy smoothing.  The paper applies such a filter only to
    decisions that *relax* the DTM response (raising the voltage), never to
    the compulsory tightening direction.
    """

    def __init__(self, alpha: float):
        if not 0.0 < alpha <= 1.0:
            raise DtmConfigError("alpha must be in (0, 1]")
        self._alpha = alpha
        self._value: float = 0.0
        self._primed = False

    @property
    def value(self) -> float:
        """Current filtered value (0.0 before the first sample)."""
        return self._value

    def update(self, sample: float) -> float:
        """Blend in ``sample`` and return the filtered value.  The first
        sample primes the filter exactly."""
        if not self._primed:
            self._value = sample
            self._primed = True
        else:
            self._value += self._alpha * (sample - self._value)
        return self._value

    def reset(self) -> None:
        """Forget all state."""
        self._value = 0.0
        self._primed = False
